//! Integration tests for the out-of-order core: structural limits,
//! renaming invariants under long runs, and checkpoint internals.

use ppa_core::{Core, CoreConfig, CsqEntry, PersistenceMode, PhysReg, Prf, RenameTable};
use ppa_isa::{ArchReg, RegClass, SyncKind, Trace, TraceBuilder};
use ppa_mem::{MemConfig, MemorySystem};

fn mem() -> MemorySystem {
    MemorySystem::new(MemConfig::memory_mode(), 1)
}

fn run(cfg: CoreConfig, trace: &Trace) -> (Core, MemorySystem) {
    let mut m = mem();
    let mut c = Core::new(cfg, 0);
    c.run(trace, &mut m);
    (c, m)
}

/// Independent single-cycle ops commit at full width.
#[test]
fn ipc_approaches_the_pipeline_width_on_independent_alus() {
    let mut b = TraceBuilder::new("wide");
    for i in 0..4_000u64 {
        b.alu(ArchReg::int((i % 8) as u8), &[ArchReg::int(8)]);
    }
    let (c, _) = run(
        CoreConfig::paper_default(PersistenceMode::Baseline),
        &b.build(),
    );
    let ipc = c.stats().ipc();
    assert!(
        ipc > 3.0,
        "independent ALUs should near width 4, got {ipc:.2}"
    );
}

/// A serial dependency chain caps IPC at ~1.
#[test]
fn dependency_chains_serialise() {
    let mut b = TraceBuilder::new("chain");
    let r = ArchReg::int(0);
    for _ in 0..2_000 {
        b.alu(r, &[r]);
    }
    let (c, _) = run(
        CoreConfig::paper_default(PersistenceMode::Baseline),
        &b.build(),
    );
    let ipc = c.stats().ipc();
    assert!(
        ipc < 1.2,
        "a serial chain cannot exceed 1 IPC, got {ipc:.2}"
    );
}

/// Narrower pipelines are slower on parallel work.
#[test]
fn width_matters() {
    let mut b = TraceBuilder::new("w");
    for i in 0..3_000u64 {
        b.alu(ArchReg::int((i % 8) as u8), &[ArchReg::int(9)]);
    }
    let trace = b.build();
    let wide = run(CoreConfig::paper_default(PersistenceMode::Baseline), &trace).0;
    let mut narrow_cfg = CoreConfig::paper_default(PersistenceMode::Baseline);
    narrow_cfg.width = 1;
    let narrow = run(narrow_cfg, &trace).0;
    assert!(narrow.stats().cycles > 2 * wide.stats().cycles);
}

/// The store queue bounds in-flight stores: a tiny SQ throttles a store
/// burst but everything still completes correctly.
#[test]
fn tiny_store_queue_throttles_but_stays_correct() {
    let mut b = TraceBuilder::new("sq");
    for i in 0..400u64 {
        b.store(ArchReg::int(0), 0x1000 + (i % 4) * 64, 1 + i % 7);
    }
    let trace = b.build();
    let mut small = CoreConfig::paper_default(PersistenceMode::Ppa);
    small.sq_entries = 2;
    let (c_small, m_small) = run(small, &trace);
    let (c_big, m_big) = run(CoreConfig::paper_default(PersistenceMode::Ppa), &trace);
    assert!(c_small.stats().cycles > c_big.stats().cycles);
    assert!(m_small.nvm_image().diff(m_small.arch_mem()).is_empty());
    assert!(m_big.nvm_image().diff(m_big.arch_mem()).is_empty());
}

/// Sync primitives drain the CSQ: immediately after a sync commits, the
/// queue must be empty (§6's precondition for lock-protected data).
#[test]
fn sync_commits_with_an_empty_csq() {
    let mut b = TraceBuilder::new("sync");
    for i in 0..8u64 {
        b.store(ArchReg::int(0), 0x100 + i * 64, i);
    }
    b.sync(SyncKind::LockRelease);
    let trace = b.build();
    let mut m = mem();
    let mut c = Core::new(CoreConfig::paper_default(PersistenceMode::Ppa), 0);
    let mut now = 0;
    let mut seen_sync_commit = false;
    while !c.is_finished() {
        let before = c.committed();
        c.step(&trace, &mut m, now);
        m.tick(now);
        if c.committed() > before && c.committed() == trace.len() as u64 {
            // The sync was the last commit; the region it closed must have
            // drained the CSQ before it could commit.
            assert_eq!(c.csq_len(), 0, "sync committed with a non-empty CSQ");
            seen_sync_commit = true;
        }
        now += 1;
        assert!(now < 1_000_000);
    }
    assert!(seen_sync_commit);
}

/// Checkpoint images only reference registers they also carry values for.
#[test]
fn checkpoint_image_is_self_contained() {
    let app_like = {
        let mut b = TraceBuilder::new("t");
        for i in 0..1_500u64 {
            let r = ArchReg::int((i % 6) as u8);
            b.alu(r, &[]);
            if i % 7 == 0 {
                b.store(r, 0x4000 + (i % 16) * 64, i);
            }
            if i % 11 == 0 {
                b.fp_alu(ArchReg::fp((i % 5) as u8), &[]);
            }
        }
        b.build()
    };
    let mut m = mem();
    let mut c = Core::new(CoreConfig::paper_default(PersistenceMode::Ppa), 0);
    for now in 0..900 {
        c.step(&app_like, &mut m, now);
        m.tick(now);
    }
    let image = c.jit_checkpoint();
    for e in &image.csq {
        assert!(
            image.reg_value(e.src).is_some(),
            "CSQ entry references unsaved register {}",
            e.src
        );
    }
    for &(_, p) in &image.crt {
        assert!(image.reg_value(p).is_some(), "CRT maps to unsaved {p}");
    }
    // Every masked register is CSQ-referenced (masking happens only at
    // store commit).
    for &p in &image.masked {
        assert!(
            image.csq.iter().any(|e| e.src == p),
            "masked {p} has no CSQ entry"
        );
    }
    // CRT covers every architectural register.
    assert_eq!(image.crt.len(), ArchReg::flat_count());
}

/// Recovery never hands out a checkpointed register to new instructions
/// until its region ends.
#[test]
fn recovered_free_list_excludes_checkpointed_registers() {
    let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);
    let p_data = PhysReg::new(RegClass::Int, 77);
    let mut crt = Vec::new();
    for a in ArchReg::all() {
        crt.push((a, PhysReg::new(a.class(), a.index() as u16)));
    }
    let image = ppa_core::CheckpointImage {
        csq: vec![CsqEntry {
            src: p_data,
            addr: 0x40,
            size: 8,
        }],
        crt,
        masked: vec![p_data],
        prf_values: {
            let mut v: Vec<(PhysReg, u64)> = ArchReg::all()
                .map(|a| (PhysReg::new(a.class(), a.index() as u16), 0))
                .collect();
            v.push((p_data, 42));
            v
        },
        lcpc: 0x1010,
        committed: 3,
    };
    let recovered = Core::recover(cfg, 0, &image);
    assert_eq!(recovered.committed(), 3);
    assert_eq!(recovered.lcpc(), 0x1010);
    assert_eq!(recovered.masked_count(), 1);
    assert_eq!(recovered.csq_len(), 1);
}

/// The rename-table and PRF primitives compose: a full allocate/free cycle
/// over every register leaves the free list whole.
#[test]
fn prf_round_trip_preserves_the_free_list() {
    let mut prf = Prf::new(64, 64);
    let mut rat = RenameTable::new();
    let mut held = Vec::new();
    for a in ArchReg::all() {
        let p = prf.allocate(a.class(), 0).expect("room");
        rat.set(a, p);
        held.push(p);
    }
    assert_eq!(prf.free_count(RegClass::Int), 64 - 16);
    assert_eq!(prf.free_count(RegClass::Fp), 64 - 32);
    for p in held {
        prf.free(p);
    }
    assert_eq!(prf.free_count(RegClass::Int), 64);
    assert_eq!(prf.free_count(RegClass::Fp), 64);
}
