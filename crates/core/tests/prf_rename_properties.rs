//! Property-style tests for the rename machinery: free-list/RAT
//! round-trips against a reference model, and MaskReg set/clear under
//! region retirement. Driven by seeded [`ppa_prng::Prng`] loops.

use ppa_core::{MaskReg, PhysReg, Prf, RenameTable};
use ppa_isa::{ArchReg, RegClass};
use ppa_prng::Prng;
use std::collections::HashSet;

const INT: usize = 48;
const FP: usize = 48;

/// Random allocate/free interleavings preserve the free-list accounting:
/// no register is handed out twice, `free_count` mirrors a reference
/// model, and exhaustion happens exactly when the model says so.
#[test]
fn free_list_round_trips_match_a_reference_model() {
    let mut rng = Prng::seed_from_u64(0x9f11_0001);
    for _case in 0..50 {
        let mut prf = Prf::new(INT, FP);
        let mut live: Vec<PhysReg> = Vec::new();
        let class = if rng.random_bool(0.5) {
            RegClass::Int
        } else {
            RegClass::Fp
        };
        let size = prf.size(class);
        for step in 0..400 {
            if rng.random_bool(0.6) {
                match prf.allocate(class, step as u64) {
                    Some(r) => {
                        assert!(
                            !live.contains(&r),
                            "register {r} allocated twice (case live set: {live:?})"
                        );
                        assert!(prf.is_allocated(r));
                        live.push(r);
                    }
                    None => assert_eq!(
                        live.len(),
                        size,
                        "allocation failed with free registers remaining"
                    ),
                }
            } else if !live.is_empty() {
                let idx = rng.random_below(live.len() as u64) as usize;
                let r = live.swap_remove(idx);
                prf.free(r);
                assert!(!prf.is_allocated(r));
            }
            assert_eq!(prf.free_count(class), size - live.len());
        }
        // Freeing everything restores the full free list and every
        // register becomes allocatable again exactly once.
        for r in live.drain(..) {
            prf.free(r);
        }
        assert_eq!(prf.free_count(class), size);
        let mut seen = HashSet::new();
        while let Some(r) = prf.allocate(class, 0) {
            assert!(seen.insert(r), "round-trip re-issued {r}");
        }
        assert_eq!(seen.len(), size);
    }
}

/// Rename → commit → reclaim round-trips: the RAT always points at
/// allocated registers, `maps_to` agrees with the table contents, and
/// reclaiming every previous mapping returns the PRF to its starting
/// occupancy (no leak, no double-free).
#[test]
fn rat_round_trip_reclaims_every_previous_mapping() {
    let mut rng = Prng::seed_from_u64(0x9f11_0002);
    for _case in 0..50 {
        let mut prf = Prf::new(INT, FP);
        let mut rat = RenameTable::new();
        // Architectural baseline: every int arch reg starts mapped.
        for a in 0..ppa_isa::NUM_INT_ARCH_REGS {
            let r = prf.allocate(RegClass::Int, 0).expect("PRF larger than ARF");
            rat.set(ArchReg::int(a as u8), r);
        }
        let baseline_free = prf.free_count(RegClass::Int);
        // A burst of renames, reclaiming each displaced mapping as the
        // in-order commit of the redefining instruction would.
        for step in 0..200u64 {
            let arch = ArchReg::int(rng.random_below(ppa_isa::NUM_INT_ARCH_REGS as u64) as u8);
            let Some(fresh) = prf.allocate(RegClass::Int, step) else {
                break;
            };
            let prev = rat.set(arch, fresh).expect("arch regs stay mapped");
            assert!(prf.is_allocated(fresh));
            assert!(rat.maps_to(fresh));
            assert!(!rat.maps_to(prev), "displaced mapping still visible");
            prf.free(prev);
            assert_eq!(
                prf.free_count(RegClass::Int),
                baseline_free,
                "rename+reclaim must be occupancy-neutral"
            );
        }
        // Every RAT entry must point at a live register.
        for (_, phys) in rat.iter() {
            if phys.class() == RegClass::Int {
                assert!(prf.is_allocated(phys));
            }
        }
    }
}

/// MaskReg set/clear under region retirement: masked registers survive
/// until the region boundary clears the mask; clears are complete; and
/// the mask never reports a register it was not given.
#[test]
fn maskreg_set_clear_tracks_region_retirement() {
    let mut rng = Prng::seed_from_u64(0x9f11_0003);
    for _case in 0..50 {
        let mut prf = Prf::new(INT, FP);
        let mut mask = MaskReg::new(INT, FP);
        let mut model: HashSet<PhysReg> = HashSet::new();
        for _region in 0..8 {
            // During a region: stores commit, pinning their data regs.
            let pins = rng.random_range(1usize..12);
            for step in 0..pins {
                if let Some(r) = prf.allocate(RegClass::Int, step as u64) {
                    mask.mask(r);
                    model.insert(r);
                }
            }
            assert_eq!(mask.masked_count(), model.len());
            for &r in &model {
                assert!(mask.is_masked(r), "{r} lost its pin mid-region");
            }
            let masked: HashSet<PhysReg> = mask.masked_regs().collect();
            assert_eq!(masked, model);
            // Region retires: deferred frees run, then the mask clears.
            for r in model.drain() {
                prf.free(r);
            }
            mask.clear();
            assert_eq!(mask.masked_count(), 0);
            assert!(mask.masked_regs().next().is_none());
        }
        assert_eq!(prf.free_count(RegClass::Int), INT);
    }
}
