use crate::prf::PhysReg;
use ppa_isa::RegClass;

/// The Store Operands Mask Register (§4): one bit per physical register.
///
/// A set bit means the register holds the data of a committed store in the
/// current region, so (a) it must not be returned to the free list even if
/// its architectural redefinition commits, and (b) it belongs to the set
/// JIT-checkpointed on power failure. The whole register clears at every
/// region boundary.
///
/// Per the paper's footnote 10, only the store's *data* register is masked
/// (address registers are not needed for replay: the CSQ records the
/// resolved physical address).
///
/// # Examples
///
/// ```
/// use ppa_core::{MaskReg, PhysReg};
/// use ppa_isa::RegClass;
///
/// let mut m = MaskReg::new(180, 168);
/// let p = PhysReg::new(RegClass::Int, 7);
/// m.mask(p);
/// assert!(m.is_masked(p));
/// m.clear();
/// assert!(!m.is_masked(p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskReg {
    int_bits: Vec<bool>,
    fp_bits: Vec<bool>,
    masked_count: usize,
}

impl MaskReg {
    /// Creates an all-clear mask sized to the PRF banks.
    pub fn new(int_size: usize, fp_size: usize) -> Self {
        MaskReg {
            int_bits: vec![false; int_size],
            fp_bits: vec![false; fp_size],
            masked_count: 0,
        }
    }

    fn bits(&self, class: RegClass) -> &Vec<bool> {
        match class {
            RegClass::Int => &self.int_bits,
            RegClass::Fp => &self.fp_bits,
        }
    }

    /// Number of bits in the vector (the paper's 348 for the default PRF).
    pub fn len(&self) -> usize {
        self.int_bits.len() + self.fp_bits.len()
    }

    /// Whether any register is masked.
    pub fn is_empty(&self) -> bool {
        self.masked_count == 0
    }

    /// Number of masked registers.
    pub fn masked_count(&self) -> usize {
        self.masked_count
    }

    /// Masks `reg` (idempotent — a register feeding several stores in one
    /// region is masked once).
    pub fn mask(&mut self, reg: PhysReg) {
        let bit = match reg.class() {
            RegClass::Int => &mut self.int_bits[reg.index() as usize],
            RegClass::Fp => &mut self.fp_bits[reg.index() as usize],
        };
        if !*bit {
            *bit = true;
            self.masked_count += 1;
        }
    }

    /// Whether `reg` is masked.
    pub fn is_masked(&self, reg: PhysReg) -> bool {
        self.bits(reg.class())[reg.index() as usize]
    }

    /// Clears every bit (region boundary).
    pub fn clear(&mut self) {
        self.int_bits.fill(false);
        self.fp_bits.fill(false);
        self.masked_count = 0;
    }

    /// Iterator over all masked registers (checkpoint contents).
    pub fn masked_regs(&self) -> impl Iterator<Item = PhysReg> + '_ {
        let ints = self
            .int_bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| PhysReg::new(RegClass::Int, i as u16));
        let fps = self
            .fp_bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| PhysReg::new(RegClass::Fp, i as u16));
        ints.chain(fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_matches_paper_prf() {
        let m = MaskReg::new(180, 168);
        assert_eq!(m.len(), 348);
    }

    #[test]
    fn masking_is_idempotent() {
        let mut m = MaskReg::new(8, 8);
        let p = PhysReg::new(RegClass::Int, 3);
        m.mask(p);
        m.mask(p);
        assert_eq!(m.masked_count(), 1);
    }

    #[test]
    fn int_and_fp_banks_are_independent() {
        let mut m = MaskReg::new(8, 8);
        m.mask(PhysReg::new(RegClass::Int, 2));
        assert!(!m.is_masked(PhysReg::new(RegClass::Fp, 2)));
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = MaskReg::new(8, 8);
        m.mask(PhysReg::new(RegClass::Int, 0));
        m.mask(PhysReg::new(RegClass::Fp, 7));
        assert_eq!(m.masked_count(), 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.masked_regs().count(), 0);
    }

    #[test]
    fn masked_regs_enumerates_both_banks() {
        let mut m = MaskReg::new(8, 8);
        m.mask(PhysReg::new(RegClass::Int, 1));
        m.mask(PhysReg::new(RegClass::Fp, 2));
        let regs: Vec<_> = m.masked_regs().collect();
        assert_eq!(regs.len(), 2);
        assert!(regs.contains(&PhysReg::new(RegClass::Int, 1)));
        assert!(regs.contains(&PhysReg::new(RegClass::Fp, 2)));
    }
}
