use crate::prf::PhysReg;
use std::collections::VecDeque;

/// One committed store tracked for replay: the index of the physical
/// register holding the data and the resolved physical address (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsqEntry {
    /// Physical register holding the stored value.
    pub src: PhysReg,
    /// Destination physical address.
    pub addr: u64,
    /// Store size in bytes.
    pub size: u8,
}

/// The Committed Store Queue (CSQ, §4.4): a circular FIFO recording the
/// committed stores of the current region in program order.
///
/// A single read/write port populates the rear during execution and streams
/// the whole queue to NVM during JIT checkpointing — no CAM is needed,
/// which is what keeps a 40-entry CSQ cheap (Table 4). The queue clears at
/// every region boundary; a full queue is itself an implicit region
/// boundary (§4.2).
///
/// # Examples
///
/// ```
/// use ppa_core::{Csq, CsqEntry, PhysReg};
/// use ppa_isa::RegClass;
///
/// let mut csq = Csq::new(40);
/// csq.push(CsqEntry { src: PhysReg::new(RegClass::Int, 1), addr: 0x100, size: 8 })
///     .expect("empty queue has room");
/// assert_eq!(csq.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csq {
    entries: VecDeque<CsqEntry>,
    capacity: usize,
    /// High-water mark, reported by the Figure 17 study.
    peak: usize,
}

impl Csq {
    /// Creates an empty CSQ.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CSQ needs at least one entry");
        Csq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full (implicit region boundary).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Highest occupancy ever observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Appends a committed store at the rear.
    ///
    /// # Errors
    ///
    /// Returns the entry back when the queue is full; the pipeline must
    /// treat this as a region boundary before retrying.
    pub fn push(&mut self, entry: CsqEntry) -> Result<(), CsqEntry> {
        if self.is_full() {
            return Err(entry);
        }
        self.entries.push_back(entry);
        self.peak = self.peak.max(self.entries.len());
        Ok(())
    }

    /// Front-to-rear iteration — the order recovery replays stores (§4.6).
    pub fn iter(&self) -> impl Iterator<Item = &CsqEntry> {
        self.entries.iter()
    }

    /// Clears the queue (region boundary).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Rebuilds a CSQ from checkpointed entries (recovery).
    ///
    /// # Panics
    ///
    /// Panics if more entries are supplied than the capacity allows.
    pub fn restore(capacity: usize, entries: impl IntoIterator<Item = CsqEntry>) -> Self {
        let mut csq = Csq::new(capacity);
        for e in entries {
            csq.push(e).expect("checkpoint cannot exceed CSQ capacity");
        }
        csq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_isa::RegClass;

    fn entry(i: u16) -> CsqEntry {
        CsqEntry {
            src: PhysReg::new(RegClass::Int, i),
            addr: i as u64 * 8,
            size: 8,
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut csq = Csq::new(4);
        for i in 0..3 {
            csq.push(entry(i)).unwrap();
        }
        let addrs: Vec<u64> = csq.iter().map(|e| e.addr).collect();
        assert_eq!(addrs, vec![0, 8, 16]);
    }

    #[test]
    fn full_queue_rejects_push() {
        let mut csq = Csq::new(2);
        csq.push(entry(0)).unwrap();
        csq.push(entry(1)).unwrap();
        assert!(csq.is_full());
        let rejected = csq.push(entry(2)).unwrap_err();
        assert_eq!(rejected.addr, 16);
        assert_eq!(csq.len(), 2);
    }

    #[test]
    fn clear_empties_but_keeps_peak() {
        let mut csq = Csq::new(4);
        csq.push(entry(0)).unwrap();
        csq.push(entry(1)).unwrap();
        csq.clear();
        assert!(csq.is_empty());
        assert_eq!(csq.peak(), 2);
    }

    #[test]
    fn restore_round_trips() {
        let mut csq = Csq::new(4);
        csq.push(entry(0)).unwrap();
        csq.push(entry(1)).unwrap();
        let copied: Vec<CsqEntry> = csq.iter().copied().collect();
        let restored = Csq::restore(4, copied);
        assert_eq!(restored, csq);
    }

    #[test]
    #[should_panic(expected = "exceed CSQ capacity")]
    fn restore_overflow_panics() {
        Csq::restore(1, vec![entry(0), entry(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        Csq::new(0);
    }
}
