use crate::ppa::checkpoint::CheckpointImage;
use ppa_mem::NvmImage;

/// Outcome of the power-failure recovery protocol (§4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Stores replayed from the CSQ.
    pub replayed_stores: usize,
    /// PC execution resumes after (the LCPC).
    pub resume_after_pc: u64,
    /// Trace index execution resumes from.
    pub resume_index: u64,
}

/// Replays the checkpointed CSQ into the NVM image, front to rear: for
/// each entry the data value is fetched from the checkpointed physical
/// register and written to the recorded physical address.
///
/// Replaying a store that was already persisted is harmless — stores are
/// idempotent (§4, footnote 8) — which is why PPA does not track which
/// individual stores were persisted before the failure.
///
/// # Panics
///
/// Panics if a CSQ entry references a register missing from the
/// checkpoint; the checkpoint always saves CSQ-referenced registers, so
/// this indicates a corrupted image.
///
/// # Examples
///
/// ```
/// use ppa_core::{replay_stores, CheckpointImage, CsqEntry, PhysReg};
/// use ppa_isa::RegClass;
/// use ppa_mem::NvmImage;
///
/// let p = PhysReg::new(RegClass::Int, 3);
/// let image = CheckpointImage {
///     csq: vec![CsqEntry { src: p, addr: 0x40, size: 8 }],
///     crt: vec![],
///     masked: vec![p],
///     prf_values: vec![(p, 77)],
///     lcpc: 0x1004,
///     committed: 2,
/// };
/// let mut nvm = NvmImage::new();
/// let report = replay_stores(&image, &mut nvm);
/// assert_eq!(report.replayed_stores, 1);
/// assert_eq!(nvm.read(0x40), Some(77));
/// ```
pub fn replay_stores(image: &CheckpointImage, nvm: &mut NvmImage) -> RecoveryReport {
    for entry in &image.csq {
        let value = image
            .reg_value(entry.src)
            .unwrap_or_else(|| panic!("checkpoint missing value for {}", entry.src));
        nvm.write_word(entry.addr, value);
    }
    RecoveryReport {
        replayed_stores: image.csq.len(),
        resume_after_pc: image.lcpc,
        resume_index: image.committed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppa::csq::CsqEntry;
    use crate::prf::PhysReg;
    use ppa_isa::RegClass;

    fn image_with(entries: Vec<CsqEntry>, values: Vec<(PhysReg, u64)>) -> CheckpointImage {
        CheckpointImage {
            csq: entries,
            crt: vec![],
            masked: vec![],
            prf_values: values,
            lcpc: 0x2000,
            committed: 10,
        }
    }

    #[test]
    fn replay_writes_every_entry_in_order() {
        let p0 = PhysReg::new(RegClass::Int, 0);
        let p1 = PhysReg::new(RegClass::Int, 1);
        let image = image_with(
            vec![
                CsqEntry {
                    src: p0,
                    addr: 0x40,
                    size: 8,
                },
                CsqEntry {
                    src: p1,
                    addr: 0x40,
                    size: 8,
                }, // same word, younger wins
            ],
            vec![(p0, 1), (p1, 2)],
        );
        let mut nvm = NvmImage::new();
        let r = replay_stores(&image, &mut nvm);
        assert_eq!(r.replayed_stores, 2);
        assert_eq!(nvm.read(0x40), Some(2), "program order must be preserved");
    }

    #[test]
    fn replay_is_idempotent() {
        let p = PhysReg::new(RegClass::Fp, 7);
        let image = image_with(
            vec![CsqEntry {
                src: p,
                addr: 0x80,
                size: 8,
            }],
            vec![(p, 5)],
        );
        let mut nvm = NvmImage::new();
        replay_stores(&image, &mut nvm);
        let first = nvm.clone();
        replay_stores(&image, &mut nvm);
        assert_eq!(nvm, first);
    }

    #[test]
    fn empty_csq_replays_nothing() {
        let image = image_with(vec![], vec![]);
        let mut nvm = NvmImage::new();
        let r = replay_stores(&image, &mut nvm);
        assert_eq!(r.replayed_stores, 0);
        assert_eq!(r.resume_after_pc, 0x2000);
        assert_eq!(r.resume_index, 10);
        assert!(nvm.is_empty());
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn missing_register_value_panics() {
        let p = PhysReg::new(RegClass::Int, 0);
        let image = image_with(
            vec![CsqEntry {
                src: p,
                addr: 0,
                size: 8,
            }],
            vec![],
        );
        replay_stores(&image, &mut NvmImage::new());
    }
}
