//! PPA's hardware additions: MaskReg, the committed store queue, the JIT
//! checkpointing controller, and the recovery protocol.

pub mod checkpoint;
pub mod csq;
pub mod mask;
pub mod recovery;

pub use checkpoint::{
    deserialize_images, serialize_images, CheckpointController, CheckpointImage, CkptState,
    IndexWalker,
};
pub use csq::{Csq, CsqEntry};
pub use mask::MaskReg;
pub use recovery::{replay_stores, RecoveryReport};
