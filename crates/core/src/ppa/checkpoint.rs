use crate::ppa::csq::CsqEntry;
use crate::prf::PhysReg;
use ppa_isa::ArchReg;

/// Everything PPA saves on impending power failure (§4.5): the five
/// structures — CSQ, CRT, MaskReg, LCPC, and the physical registers marked
/// by CSQ or CRT entries. Nothing about in-flight (speculative) state is
/// saved; recovery resumes after the last committed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    /// Committed stores of the interrupted region, in program order.
    pub csq: Vec<CsqEntry>,
    /// Commit rename table: architectural → physical mappings of committed
    /// state.
    pub crt: Vec<(ArchReg, PhysReg)>,
    /// Masked (store-integrity-protected) physical registers.
    pub masked: Vec<PhysReg>,
    /// Values of the checkpointed physical registers (CSQ ∪ CRT sources).
    pub prf_values: Vec<(PhysReg, u64)>,
    /// Last committed program counter.
    pub lcpc: u64,
    /// Number of instructions committed before the failure. In hardware
    /// the LCPC alone locates the resume point; in this trace-driven model
    /// the commit index is its analogue.
    pub committed: u64,
}

impl CheckpointImage {
    /// Value of a checkpointed physical register, if it was saved.
    pub fn reg_value(&self, reg: PhysReg) -> Option<u64> {
        self.prf_values
            .iter()
            .find(|(r, _)| *r == reg)
            .map(|&(_, v)| v)
    }

    /// Bytes the JIT-checkpoint controller must move to NVM, using the
    /// paper's accounting (§7.12–7.13): 8-byte-rounded structures, 16 B per
    /// physical register (128-bit worst case), a 9-bit-per-entry CRT, and a
    /// MaskReg of one bit per physical register.
    pub fn checkpoint_bytes(&self, total_prf: usize) -> u64 {
        let round8 = |b: u64| b.div_ceil(8) * 8;
        let csq = self.csq.len() as u64 * 8;
        let prf = self.prf_values.len() as u64 * 16;
        let crt = (self.crt.len() as u64 * 9).div_ceil(8);
        let mask = round8((total_prf as u64).div_ceil(8));
        let lcpc = 8;
        csq + prf + crt + mask + lcpc
    }
}

/// The JIT-checkpointing controller's finite state machine (Figure 7).
///
/// On `Power_Fail` the FSM stops the pipeline, then alternates Read/Write
/// micro-steps, walking the five structures with the Source Index
/// Generator and writing each 8-byte word to the address produced by the
/// NVM Address Generator. Read and write overlap after the first word, so
/// the controller sustains 8 B/cycle — which is how the paper's 1838-byte
/// worst case takes 114.9 ns of controller time.
///
/// # Examples
///
/// ```
/// use ppa_core::CheckpointController;
///
/// let mut fsm = CheckpointController::new();
/// fsm.power_fail(1838);
/// let cycles = fsm.run_to_completion();
/// // 1838 bytes / 8 B per cycle, plus the stop-pipeline and read-prologue
/// // cycles.
/// assert_eq!(cycles, 2 + 230);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointController {
    state: CkptState,
    words_total: u64,
    words_done: u64,
}

/// FSM states (Figure 7, bottom left).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptState {
    /// Waiting for `Power_Fail`.
    Idle,
    /// Freezing the pipeline so structure contents stop changing.
    StopPipeline,
    /// `Core_Rd` raised: reading the word selected by the SIG.
    Read,
    /// `NVM_Wr` raised: writing to the address from the NAG (overlapped
    /// with the next read).
    Write,
}

impl CheckpointController {
    /// Creates an idle controller.
    pub fn new() -> Self {
        CheckpointController {
            state: CkptState::Idle,
            words_total: 0,
            words_done: 0,
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> CkptState {
        self.state
    }

    /// Delivers `Power_Fail` with the number of bytes to checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the controller is not idle (a second failure cannot
    /// arrive while the first checkpoint is in progress — the core is
    /// already powered down).
    pub fn power_fail(&mut self, bytes: u64) {
        assert_eq!(self.state, CkptState::Idle, "controller is busy");
        self.words_total = bytes.div_ceil(8);
        self.words_done = 0;
        self.state = CkptState::StopPipeline;
    }

    /// Advances one cycle; returns `true` while busy.
    pub fn step(&mut self) -> bool {
        self.state = match self.state {
            CkptState::Idle => CkptState::Idle,
            CkptState::StopPipeline => {
                if self.words_total == 0 {
                    CkptState::Idle
                } else {
                    CkptState::Read
                }
            }
            CkptState::Read => CkptState::Write,
            CkptState::Write => {
                // `Read_Finish`/`NVM_Wr` overlap: one word retires per
                // cycle in this state.
                self.words_done += 1;
                if self.words_done >= self.words_total {
                    // `Ckpt_All` asserted.
                    CkptState::Idle
                } else {
                    CkptState::Write
                }
            }
        };
        self.state != CkptState::Idle
    }

    /// Runs the whole checkpoint, returning the cycles consumed.
    pub fn run_to_completion(&mut self) -> u64 {
        let mut cycles = 0;
        while self.step() {
            cycles += 1;
        }
        cycles + 1 // the final step that returned to Idle also took a cycle
    }
}

impl Default for CheckpointController {
    fn default() -> Self {
        CheckpointController::new()
    }
}

/// The shared Base+Offset adder used by both the Source Index Generator
/// and the NVM Address Generator (Figure 7, bottom right): walks a
/// structure's entries as `base + offset` with the offset advancing by a
/// fixed stride.
///
/// # Examples
///
/// ```
/// use ppa_core::IndexWalker;
///
/// let mut nag = IndexWalker::new(0x1000, 8);
/// assert_eq!(nag.next_index(), 0x1000);
/// assert_eq!(nag.next_index(), 0x1008);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexWalker {
    base: u64,
    offset: u64,
    stride: u64,
}

impl IndexWalker {
    /// Creates a walker starting at `base` advancing by `stride`.
    pub fn new(base: u64, stride: u64) -> Self {
        IndexWalker {
            base,
            offset: 0,
            stride,
        }
    }

    /// Produces `base + offset` and advances the offset.
    pub fn next_index(&mut self) -> u64 {
        let v = self.base + self.offset;
        self.offset += self.stride;
        v
    }

    /// Resets the offset, optionally rebasing (moving to the next of the
    /// five structures).
    pub fn rebase(&mut self, base: u64) {
        self.base = base;
        self.offset = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_isa::RegClass;

    fn sample_image() -> CheckpointImage {
        CheckpointImage {
            csq: (0..40)
                .map(|i| CsqEntry {
                    src: PhysReg::new(RegClass::Int, i),
                    addr: i as u64 * 8,
                    size: 8,
                })
                .collect(),
            crt: ArchReg::all()
                .map(|a| (a, PhysReg::new(a.class(), a.index() as u16)))
                .collect(),
            masked: vec![],
            prf_values: (0..88)
                .map(|i| (PhysReg::new(RegClass::Int, i), i as u64))
                .collect(),
            lcpc: 0x1000,
            committed: 100,
        }
    }

    #[test]
    fn worst_case_bytes_match_paper_1838() {
        // 40 CSQ entries (320 B) + 88 registers at 16 B (1408 B) + 48 CRT
        // entries at 9 bits (54 B) + 348-bit MaskReg rounded to 48 B +
        // 8 B LCPC = 1838 B (§7.13).
        let img = sample_image();
        assert_eq!(img.checkpoint_bytes(348), 1838);
    }

    #[test]
    fn fsm_walks_stop_read_write_idle() {
        let mut fsm = CheckpointController::new();
        assert_eq!(fsm.state(), CkptState::Idle);
        fsm.power_fail(16); // two words
        assert_eq!(fsm.state(), CkptState::StopPipeline);
        fsm.step();
        assert_eq!(fsm.state(), CkptState::Read);
        fsm.step();
        assert_eq!(fsm.state(), CkptState::Write);
        fsm.step(); // word 1 retires
        assert_eq!(fsm.state(), CkptState::Write);
        fsm.step(); // word 2 retires -> Ckpt_All
        assert_eq!(fsm.state(), CkptState::Idle);
    }

    #[test]
    fn controller_sustains_8_bytes_per_cycle_asymptotically() {
        let mut fsm = CheckpointController::new();
        fsm.power_fail(8000);
        let cycles = fsm.run_to_completion();
        // 1000 words + stop + read prologue.
        assert_eq!(cycles, 1002);
    }

    #[test]
    fn zero_byte_checkpoint_returns_to_idle() {
        let mut fsm = CheckpointController::new();
        fsm.power_fail(0);
        assert_eq!(fsm.run_to_completion(), 1);
        assert_eq!(fsm.state(), CkptState::Idle);
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn double_power_fail_panics() {
        let mut fsm = CheckpointController::new();
        fsm.power_fail(8);
        fsm.power_fail(8);
    }

    #[test]
    fn reg_value_lookup() {
        let img = sample_image();
        assert_eq!(img.reg_value(PhysReg::new(RegClass::Int, 3)), Some(3));
        assert_eq!(img.reg_value(PhysReg::new(RegClass::Fp, 3)), None);
    }

    #[test]
    fn walker_rebase_restarts_offsets() {
        let mut w = IndexWalker::new(0, 8);
        w.next_index();
        w.next_index();
        w.rebase(0x100);
        assert_eq!(w.next_index(), 0x100);
    }
}
