use crate::ppa::csq::CsqEntry;
use crate::prf::PhysReg;
use ppa_isa::{ArchReg, RegClass};

/// Everything PPA saves on impending power failure (§4.5): the five
/// structures — CSQ, CRT, MaskReg, LCPC, and the physical registers marked
/// by CSQ or CRT entries. Nothing about in-flight (speculative) state is
/// saved; recovery resumes after the last committed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    /// Committed stores of the interrupted region, in program order.
    pub csq: Vec<CsqEntry>,
    /// Commit rename table: architectural → physical mappings of committed
    /// state.
    pub crt: Vec<(ArchReg, PhysReg)>,
    /// Masked (store-integrity-protected) physical registers.
    pub masked: Vec<PhysReg>,
    /// Values of the checkpointed physical registers (CSQ ∪ CRT sources).
    pub prf_values: Vec<(PhysReg, u64)>,
    /// Last committed program counter.
    pub lcpc: u64,
    /// Number of instructions committed before the failure. In hardware
    /// the LCPC alone locates the resume point; in this trace-driven model
    /// the commit index is its analogue.
    pub committed: u64,
}

impl CheckpointImage {
    /// Value of a checkpointed physical register, if it was saved.
    pub fn reg_value(&self, reg: PhysReg) -> Option<u64> {
        self.prf_values
            .iter()
            .find(|(r, _)| *r == reg)
            .map(|&(_, v)| v)
    }

    /// Bytes the JIT-checkpoint controller must move to NVM, using the
    /// paper's accounting (§7.12–7.13): 8-byte-rounded structures, 16 B per
    /// physical register (128-bit worst case), a 9-bit-per-entry CRT, and a
    /// MaskReg of one bit per physical register.
    pub fn checkpoint_bytes(&self, total_prf: usize) -> u64 {
        let round8 = |b: u64| b.div_ceil(8) * 8;
        let csq = self.csq.len() as u64 * 8;
        let prf = self.prf_values.len() as u64 * 16;
        let crt = (self.crt.len() as u64 * 9).div_ceil(8);
        let mask = round8((total_prf as u64).div_ceil(8));
        let lcpc = 8;
        csq + prf + crt + mask + lcpc
    }

    /// Serializes the image into the 8-byte-word stream the checkpoint
    /// controller writes to NVM: a magic header, the five structures, a
    /// checksum, and a completion marker. The marker is the last word
    /// written, so any prefix of the stream (a torn, mid-flush image) is
    /// detectably incomplete.
    pub fn serialize(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(8 + self.csq.len() * 2 + self.crt.len());
        w.push(IMAGE_MAGIC);
        w.push(pack_counts(
            self.csq.len(),
            self.crt.len(),
            self.masked.len(),
            self.prf_values.len(),
        ));
        w.push(self.lcpc);
        w.push(self.committed);
        for e in &self.csq {
            w.push(pack_phys(e.src) << 8 | e.size as u64);
            w.push(e.addr);
        }
        for &(a, p) in &self.crt {
            w.push(pack_arch(a) << 32 | pack_phys(p));
        }
        for &p in &self.masked {
            w.push(pack_phys(p));
        }
        for &(p, v) in &self.prf_values {
            w.push(pack_phys(p));
            w.push(v);
        }
        w.push(checksum(&w));
        w.push(IMAGE_END);
        w
    }

    /// Rebuilds an image from a serialized word stream, returning the
    /// image and the number of words consumed. Returns `None` if the
    /// stream is torn (truncated mid-flush), corrupted, or lacks its
    /// completion marker — a recovery path must never trust such state.
    pub fn deserialize(words: &[u64]) -> Option<(CheckpointImage, usize)> {
        let mut r = Reader { words, pos: 0 };
        if r.next()? != IMAGE_MAGIC {
            return None;
        }
        let (csq_len, crt_len, masked_len, prf_len) = unpack_counts(r.next()?);
        let lcpc = r.next()?;
        let committed = r.next()?;
        let mut csq = Vec::with_capacity(csq_len);
        for _ in 0..csq_len {
            let head = r.next()?;
            let addr = r.next()?;
            csq.push(CsqEntry {
                src: unpack_phys(head >> 8)?,
                addr,
                size: (head & 0xff) as u8,
            });
        }
        let mut crt = Vec::with_capacity(crt_len);
        for _ in 0..crt_len {
            let w = r.next()?;
            crt.push((unpack_arch(w >> 32)?, unpack_phys(w & 0xffff_ffff)?));
        }
        let mut masked = Vec::with_capacity(masked_len);
        for _ in 0..masked_len {
            masked.push(unpack_phys(r.next()?)?);
        }
        let mut prf_values = Vec::with_capacity(prf_len);
        for _ in 0..prf_len {
            let p = unpack_phys(r.next()?)?;
            let v = r.next()?;
            prf_values.push((p, v));
        }
        let expected = checksum(&words[..r.pos]);
        if r.next()? != expected || r.next()? != IMAGE_END {
            return None;
        }
        Some((
            CheckpointImage {
                csq,
                crt,
                masked,
                prf_values,
                lcpc,
                committed,
            },
            r.pos,
        ))
    }
}

const IMAGE_MAGIC: u64 = 0x5050_4130_494d_4731; // "PPA0IMG1"
const IMAGE_END: u64 = 0x5050_4130_494d_4745; // "PPA0IMGE"
const STREAM_MAGIC: u64 = 0x5050_4130_434b_5031; // "PPA0CKP1"
const STREAM_END: u64 = 0x5050_4130_434b_5045; // "PPA0CKPE"

struct Reader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl Reader<'_> {
    fn next(&mut self) -> Option<u64> {
        let w = self.words.get(self.pos).copied()?;
        self.pos += 1;
        Some(w)
    }
}

/// FNV-1a over the little-endian bytes of the words — the integrity word
/// the controller appends so recovery can reject corrupted images.
fn checksum(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn pack_counts(csq: usize, crt: usize, masked: usize, prf: usize) -> u64 {
    (csq as u64) << 48 | (crt as u64) << 32 | (masked as u64) << 16 | prf as u64
}

fn unpack_counts(w: u64) -> (usize, usize, usize, usize) {
    (
        (w >> 48) as usize,
        (w >> 32 & 0xffff) as usize,
        (w >> 16 & 0xffff) as usize,
        (w & 0xffff) as usize,
    )
}

fn pack_phys(p: PhysReg) -> u64 {
    let class = match p.class() {
        RegClass::Int => 0u64,
        RegClass::Fp => 1,
    };
    class << 16 | p.index() as u64
}

fn unpack_phys(w: u64) -> Option<PhysReg> {
    let class = match w >> 16 {
        0 => RegClass::Int,
        1 => RegClass::Fp,
        _ => return None,
    };
    Some(PhysReg::new(class, (w & 0xffff) as u16))
}

fn pack_arch(a: ArchReg) -> u64 {
    let class = match a.class() {
        RegClass::Int => 0u64,
        RegClass::Fp => 1,
    };
    class << 8 | a.index() as u64
}

fn unpack_arch(w: u64) -> Option<ArchReg> {
    let class = match w >> 8 & 1 {
        0 => RegClass::Int,
        _ => RegClass::Fp,
    };
    if w >> 9 != 0 {
        return None;
    }
    Some(ArchReg::new(class, (w & 0xff) as u8))
}

/// Serializes a whole machine's per-core images into one contiguous word
/// stream: `[STREAM_MAGIC, n_cores, image_0 .. image_{n-1}, STREAM_END]`.
/// The trailing marker is written last, so a flush interrupted at any
/// word leaves a stream [`deserialize_images`] rejects.
pub fn serialize_images(images: &[CheckpointImage]) -> Vec<u64> {
    let mut w = vec![STREAM_MAGIC, images.len() as u64];
    for img in images {
        w.extend(img.serialize());
    }
    w.push(STREAM_END);
    w
}

/// Rebuilds every core's image from a serialized stream, or `None` if the
/// stream is torn or corrupted anywhere (recovery must reject partially
/// flushed machine checkpoints).
pub fn deserialize_images(words: &[u64]) -> Option<Vec<CheckpointImage>> {
    let mut r = Reader { words, pos: 0 };
    if r.next()? != STREAM_MAGIC {
        return None;
    }
    let n = r.next()? as usize;
    let mut images = Vec::with_capacity(n);
    for _ in 0..n {
        let (img, used) = CheckpointImage::deserialize(&words[r.pos..])?;
        r.pos += used;
        images.push(img);
    }
    if r.next()? != STREAM_END || r.pos != words.len() {
        return None;
    }
    Some(images)
}

/// The JIT-checkpointing controller's finite state machine (Figure 7).
///
/// On `Power_Fail` the FSM stops the pipeline, then alternates Read/Write
/// micro-steps, walking the five structures with the Source Index
/// Generator and writing each 8-byte word to the address produced by the
/// NVM Address Generator. Read and write overlap after the first word, so
/// the controller sustains 8 B/cycle — which is how the paper's 1838-byte
/// worst case takes 114.9 ns of controller time.
///
/// # Examples
///
/// ```
/// use ppa_core::CheckpointController;
///
/// let mut fsm = CheckpointController::new();
/// fsm.power_fail(1838);
/// let cycles = fsm.run_to_completion();
/// // 1838 bytes / 8 B per cycle, plus the stop-pipeline and read-prologue
/// // cycles.
/// assert_eq!(cycles, 2 + 230);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointController {
    state: CkptState,
    words_total: u64,
    words_done: u64,
}

/// FSM states (Figure 7, bottom left).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptState {
    /// Waiting for `Power_Fail`.
    Idle,
    /// Freezing the pipeline so structure contents stop changing.
    StopPipeline,
    /// `Core_Rd` raised: reading the word selected by the SIG.
    Read,
    /// `NVM_Wr` raised: writing to the address from the NAG (overlapped
    /// with the next read).
    Write,
}

impl CheckpointController {
    /// Creates an idle controller.
    pub fn new() -> Self {
        CheckpointController {
            state: CkptState::Idle,
            words_total: 0,
            words_done: 0,
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> CkptState {
        self.state
    }

    /// Words the flush has retired to NVM so far. Together with
    /// [`CheckpointController::words_total`] this locates a mid-flush
    /// failure point: a crash model that interrupts the flush leaves only
    /// the first `words_done()` words of the serialized stream durable.
    pub fn words_done(&self) -> u64 {
        self.words_done
    }

    /// Total words the current flush must move.
    pub fn words_total(&self) -> u64 {
        self.words_total
    }

    /// Whether a flush is in progress.
    pub fn is_busy(&self) -> bool {
        self.state != CkptState::Idle
    }

    /// Delivers `Power_Fail` with the number of bytes to checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the controller is not idle (a second failure cannot
    /// arrive while the first checkpoint is in progress — the core is
    /// already powered down).
    pub fn power_fail(&mut self, bytes: u64) {
        assert_eq!(self.state, CkptState::Idle, "controller is busy");
        self.words_total = bytes.div_ceil(8);
        self.words_done = 0;
        self.state = CkptState::StopPipeline;
    }

    /// Advances one cycle; returns `true` while busy.
    pub fn step(&mut self) -> bool {
        self.state = match self.state {
            CkptState::Idle => CkptState::Idle,
            CkptState::StopPipeline => {
                if self.words_total == 0 {
                    CkptState::Idle
                } else {
                    CkptState::Read
                }
            }
            CkptState::Read => CkptState::Write,
            CkptState::Write => {
                // `Read_Finish`/`NVM_Wr` overlap: one word retires per
                // cycle in this state.
                self.words_done += 1;
                if self.words_done >= self.words_total {
                    // `Ckpt_All` asserted.
                    CkptState::Idle
                } else {
                    CkptState::Write
                }
            }
        };
        self.state != CkptState::Idle
    }

    /// Runs the whole checkpoint, returning the cycles consumed.
    pub fn run_to_completion(&mut self) -> u64 {
        let mut cycles = 0;
        while self.step() {
            cycles += 1;
        }
        cycles + 1 // the final step that returned to Idle also took a cycle
    }
}

impl Default for CheckpointController {
    fn default() -> Self {
        CheckpointController::new()
    }
}

/// The shared Base+Offset adder used by both the Source Index Generator
/// and the NVM Address Generator (Figure 7, bottom right): walks a
/// structure's entries as `base + offset` with the offset advancing by a
/// fixed stride.
///
/// # Examples
///
/// ```
/// use ppa_core::IndexWalker;
///
/// let mut nag = IndexWalker::new(0x1000, 8);
/// assert_eq!(nag.next_index(), 0x1000);
/// assert_eq!(nag.next_index(), 0x1008);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexWalker {
    base: u64,
    offset: u64,
    stride: u64,
}

impl IndexWalker {
    /// Creates a walker starting at `base` advancing by `stride`.
    pub fn new(base: u64, stride: u64) -> Self {
        IndexWalker {
            base,
            offset: 0,
            stride,
        }
    }

    /// Produces `base + offset` and advances the offset.
    pub fn next_index(&mut self) -> u64 {
        let v = self.base + self.offset;
        self.offset += self.stride;
        v
    }

    /// Resets the offset, optionally rebasing (moving to the next of the
    /// five structures).
    pub fn rebase(&mut self, base: u64) {
        self.base = base;
        self.offset = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_isa::RegClass;

    fn sample_image() -> CheckpointImage {
        CheckpointImage {
            csq: (0..40)
                .map(|i| CsqEntry {
                    src: PhysReg::new(RegClass::Int, i),
                    addr: i as u64 * 8,
                    size: 8,
                })
                .collect(),
            crt: ArchReg::all()
                .map(|a| (a, PhysReg::new(a.class(), a.index() as u16)))
                .collect(),
            masked: vec![],
            prf_values: (0..88)
                .map(|i| (PhysReg::new(RegClass::Int, i), i as u64))
                .collect(),
            lcpc: 0x1000,
            committed: 100,
        }
    }

    #[test]
    fn worst_case_bytes_match_paper_1838() {
        // 40 CSQ entries (320 B) + 88 registers at 16 B (1408 B) + 48 CRT
        // entries at 9 bits (54 B) + 348-bit MaskReg rounded to 48 B +
        // 8 B LCPC = 1838 B (§7.13).
        let img = sample_image();
        assert_eq!(img.checkpoint_bytes(348), 1838);
    }

    #[test]
    fn fsm_walks_stop_read_write_idle() {
        let mut fsm = CheckpointController::new();
        assert_eq!(fsm.state(), CkptState::Idle);
        fsm.power_fail(16); // two words
        assert_eq!(fsm.state(), CkptState::StopPipeline);
        fsm.step();
        assert_eq!(fsm.state(), CkptState::Read);
        fsm.step();
        assert_eq!(fsm.state(), CkptState::Write);
        fsm.step(); // word 1 retires
        assert_eq!(fsm.state(), CkptState::Write);
        fsm.step(); // word 2 retires -> Ckpt_All
        assert_eq!(fsm.state(), CkptState::Idle);
    }

    #[test]
    fn controller_sustains_8_bytes_per_cycle_asymptotically() {
        let mut fsm = CheckpointController::new();
        fsm.power_fail(8000);
        let cycles = fsm.run_to_completion();
        // 1000 words + stop + read prologue.
        assert_eq!(cycles, 1002);
    }

    #[test]
    fn zero_byte_checkpoint_returns_to_idle() {
        let mut fsm = CheckpointController::new();
        fsm.power_fail(0);
        assert_eq!(fsm.run_to_completion(), 1);
        assert_eq!(fsm.state(), CkptState::Idle);
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn double_power_fail_panics() {
        let mut fsm = CheckpointController::new();
        fsm.power_fail(8);
        fsm.power_fail(8);
    }

    #[test]
    fn reg_value_lookup() {
        let img = sample_image();
        assert_eq!(img.reg_value(PhysReg::new(RegClass::Int, 3)), Some(3));
        assert_eq!(img.reg_value(PhysReg::new(RegClass::Fp, 3)), None);
    }

    #[test]
    fn walker_rebase_restarts_offsets() {
        let mut w = IndexWalker::new(0, 8);
        w.next_index();
        w.next_index();
        w.rebase(0x100);
        assert_eq!(w.next_index(), 0x100);
    }

    fn image_with_state() -> CheckpointImage {
        CheckpointImage {
            csq: vec![
                CsqEntry {
                    src: PhysReg::new(RegClass::Int, 5),
                    addr: 0x1000,
                    size: 8,
                },
                CsqEntry {
                    src: PhysReg::new(RegClass::Fp, 3),
                    addr: 0x2008,
                    size: 4,
                },
            ],
            crt: vec![
                (ArchReg::int(0), PhysReg::new(RegClass::Int, 7)),
                (ArchReg::fp(2), PhysReg::new(RegClass::Fp, 9)),
            ],
            masked: vec![PhysReg::new(RegClass::Int, 5)],
            prf_values: vec![
                (PhysReg::new(RegClass::Int, 5), 42),
                (PhysReg::new(RegClass::Int, 7), 0xdead_beef),
            ],
            lcpc: 0x40_0010,
            committed: 12,
        }
    }

    #[test]
    fn serialize_round_trips() {
        let img = image_with_state();
        let words = img.serialize();
        let (back, used) = CheckpointImage::deserialize(&words).expect("intact stream");
        assert_eq!(back, img);
        assert_eq!(used, words.len());
    }

    #[test]
    fn every_torn_prefix_is_rejected() {
        let img = image_with_state();
        let words = img.serialize();
        for cut in 0..words.len() {
            assert!(
                CheckpointImage::deserialize(&words[..cut]).is_none(),
                "a stream torn at word {cut}/{} must not deserialize",
                words.len()
            );
        }
    }

    #[test]
    fn corrupted_word_fails_the_checksum() {
        let img = image_with_state();
        let mut words = img.serialize();
        words[4] ^= 1;
        assert!(CheckpointImage::deserialize(&words).is_none());
    }

    #[test]
    fn multi_image_stream_round_trips_and_rejects_tearing() {
        let images = vec![image_with_state(), sample_image()];
        let words = serialize_images(&images);
        assert_eq!(deserialize_images(&words).expect("intact"), images);
        for cut in 0..words.len() {
            assert!(deserialize_images(&words[..cut]).is_none(), "torn at {cut}");
        }
    }

    #[test]
    fn controller_reports_flush_progress() {
        let mut fsm = CheckpointController::new();
        fsm.power_fail(32); // four words
        assert_eq!(fsm.words_total(), 4);
        assert!(fsm.is_busy());
        fsm.step(); // StopPipeline -> Read
        fsm.step(); // Read -> Write
        assert_eq!(fsm.words_done(), 0);
        fsm.step(); // word 1
        assert_eq!(fsm.words_done(), 1);
        fsm.run_to_completion();
        assert_eq!(fsm.words_done(), 4);
        assert!(!fsm.is_busy());
    }
}
