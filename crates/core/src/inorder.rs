use crate::stats::RegionEndCause;
use ppa_isa::{Trace, UopKind};
use ppa_mem::MemorySystem;
use std::collections::VecDeque;

/// A committed store in the in-order core's value-carrying CSQ.
///
/// §6 ("In-Order Cores and ROB-Style Register Renaming"): cores without a
/// unified PRF accommodate the *data value* in each CSQ entry instead of a
/// physical-register index. Replay then needs no register file at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueCsqEntry {
    /// Destination physical address.
    pub addr: u64,
    /// The stored value itself.
    pub value: u64,
    /// Store size in bytes.
    pub size: u8,
}

/// Checkpoint of the in-order core: the value-carrying CSQ plus LCPC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InOrderCheckpoint {
    /// Committed, possibly unpersisted stores with their values.
    pub csq: Vec<ValueCsqEntry>,
    /// Last committed PC.
    pub lcpc: u64,
    /// Instructions committed before the failure.
    pub committed: u64,
}

impl InOrderCheckpoint {
    /// Replays the checkpointed stores into the NVM image and returns how
    /// many were replayed.
    pub fn replay(&self, nvm: &mut ppa_mem::NvmImage) -> usize {
        for e in &self.csq {
            nvm.write_word(e.addr, e.value);
        }
        self.csq.len()
    }

    /// Bytes to checkpoint: each entry carries an 8-byte value and an
    /// 8-byte address, plus the LCPC.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.csq.len() as u64 * 16 + 8
    }
}

/// Execution statistics of the in-order core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InOrderStats {
    /// Cycles executed.
    pub cycles: u64,
    /// Micro-ops committed.
    pub committed_uops: u64,
    /// Stores committed.
    pub committed_stores: u64,
    /// Regions completed.
    pub regions: u64,
    /// Cycles stalled waiting for region persistence.
    pub region_stall_cycles: u64,
}

/// The §6 in-order core with a value-carrying CSQ.
///
/// A scalar, blocking pipeline: each micro-op executes to completion
/// before the next starts (loads block for their full memory latency).
/// Committed stores enter the value-carrying CSQ and are persisted through
/// the same asynchronous write-buffer path as the out-of-order PPA core;
/// a full CSQ or a synchronisation primitive ends the region.
///
/// # Examples
///
/// ```
/// use ppa_core::InOrderCore;
/// use ppa_isa::{ArchReg, TraceBuilder};
/// use ppa_mem::{MemConfig, MemorySystem};
///
/// let mut b = TraceBuilder::new("t");
/// b.store(ArchReg::int(0), 0x40, 9);
/// let trace = b.build();
/// let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
/// let mut core = InOrderCore::new(40, 0);
/// core.run(&trace, &mut mem);
/// assert!(mem.nvm_image().diff(mem.arch_mem()).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct InOrderCore {
    id: usize,
    csq: VecDeque<ValueCsqEntry>,
    csq_capacity: usize,
    lcpc: u64,
    committed: u64,
    stats: InOrderStats,
}

impl InOrderCore {
    /// Creates an in-order core with the given CSQ capacity.
    ///
    /// # Panics
    ///
    /// Panics if `csq_capacity` is zero.
    pub fn new(csq_capacity: usize, id: usize) -> Self {
        assert!(csq_capacity > 0, "CSQ needs at least one entry");
        InOrderCore {
            id,
            csq: VecDeque::with_capacity(csq_capacity),
            csq_capacity,
            lcpc: 0,
            committed: 0,
            stats: InOrderStats::default(),
        }
    }

    /// Execution statistics.
    pub fn stats(&self) -> &InOrderStats {
        &self.stats
    }

    /// Micro-ops committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Waits (advancing time and ticking memory) until the core's persists
    /// drain, then clears the CSQ — a region boundary.
    fn region_boundary(&mut self, mem: &mut MemorySystem, now: &mut u64, cause: RegionEndCause) {
        let _ = cause;
        while mem.persist_outstanding(self.id) > 0 {
            mem.tick(*now);
            *now += 1;
            self.stats.region_stall_cycles += 1;
        }
        self.csq.clear();
        self.stats.regions += 1;
    }

    /// Runs the trace to completion, returning total cycles.
    pub fn run(&mut self, trace: &Trace, mem: &mut MemorySystem) -> u64 {
        let mut now = self.stats.cycles;
        let start_idx = self.committed as usize;
        for u in trace.as_slice()[start_idx..].iter() {
            match u.kind {
                UopKind::Load => {
                    let m = u.mem.expect("load has an address");
                    now += mem.load(self.id, m.addr, now);
                }
                UopKind::Store => {
                    let m = u.mem.expect("store has an address");
                    if self.csq.len() >= self.csq_capacity {
                        self.region_boundary(mem, &mut now, RegionEndCause::CsqFull);
                    }
                    now += mem.store_merge(self.id, m.addr, now);
                    mem.commit_store_value(m.addr, m.value);
                    self.csq.push_back(ValueCsqEntry {
                        addr: m.addr,
                        value: m.value,
                        size: m.size,
                    });
                    while !mem.persist_enqueue(self.id, m.addr, now) {
                        mem.tick(now);
                        now += 1;
                    }
                    self.stats.committed_stores += 1;
                }
                UopKind::Sync(_) => {
                    self.region_boundary(mem, &mut now, RegionEndCause::Sync);
                    now += u64::from(u.kind.exec_latency());
                }
                _ => {
                    now += u64::from(u.kind.exec_latency());
                }
            }
            mem.tick(now);
            self.lcpc = u.pc;
            self.committed += 1;
            self.stats.committed_uops += 1;
        }
        // Final region drains before "exit".
        self.region_boundary(mem, &mut now, RegionEndCause::ProgramEnd);
        self.stats.cycles = now;
        now
    }

    /// JIT checkpoint: the value-carrying CSQ plus LCPC.
    pub fn jit_checkpoint(&self) -> InOrderCheckpoint {
        InOrderCheckpoint {
            csq: self.csq.iter().copied().collect(),
            lcpc: self.lcpc,
            committed: self.committed,
        }
    }

    /// Rebuilds the core from a checkpoint; resume by calling
    /// [`InOrderCore::run`] with the same trace.
    pub fn recover(csq_capacity: usize, id: usize, image: &InOrderCheckpoint) -> Self {
        let mut core = InOrderCore::new(csq_capacity, id);
        core.csq.extend(image.csq.iter().copied());
        core.lcpc = image.lcpc;
        core.committed = image.committed;
        core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_isa::{ArchReg, TraceBuilder};
    use ppa_mem::MemConfig;

    fn trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("t");
        for i in 0..n {
            b.alu(ArchReg::int(0), &[]);
            b.store(ArchReg::int(0), 0x1000 + i * 64, i + 1);
        }
        b.build()
    }

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig::memory_mode(), 1)
    }

    #[test]
    fn completes_and_is_consistent() {
        let t = trace(100);
        let mut m = mem();
        let mut c = InOrderCore::new(40, 0);
        let cycles = c.run(&t, &mut m);
        assert!(cycles > 0);
        assert_eq!(c.committed(), t.len() as u64);
        assert!(m.nvm_image().diff(m.arch_mem()).is_empty());
    }

    #[test]
    fn small_csq_forces_regions() {
        let t = trace(50);
        let mut m = mem();
        let mut c = InOrderCore::new(4, 0);
        c.run(&t, &mut m);
        assert!(c.stats().regions > 5);
    }

    #[test]
    fn checkpoint_carries_values_not_registers() {
        let t = trace(10);
        let mut m = mem();
        let mut c = InOrderCore::new(40, 0);
        c.run(&t, &mut m);
        // After the final drain the CSQ is empty; checkpoint mid-way
        // instead by rebuilding and not draining.
        let mut c2 = InOrderCore::new(40, 0);
        let partial = {
            let mut b = TraceBuilder::new("p");
            b.store(ArchReg::int(0), 0x40, 7);
            b.build()
        };
        let mut m2 = mem();
        c2.run(&partial, &mut m2);
        // Simulate a failure before drain by pushing an entry directly
        // through a fresh run that we checkpoint immediately after a store:
        let img = InOrderCheckpoint {
            csq: vec![ValueCsqEntry {
                addr: 0x40,
                value: 7,
                size: 8,
            }],
            lcpc: 0x1000,
            committed: 1,
        };
        let mut nvm = ppa_mem::NvmImage::new();
        assert_eq!(img.replay(&mut nvm), 1);
        assert_eq!(nvm.read(0x40), Some(7));
        assert_eq!(img.checkpoint_bytes(), 24);
    }

    #[test]
    fn recover_resumes_from_commit_index() {
        let t = trace(20);
        let img = InOrderCheckpoint {
            csq: vec![],
            lcpc: 0,
            committed: 10,
        };
        let mut c = InOrderCore::recover(40, 0, &img);
        let mut m = mem();
        c.run(&t, &mut m);
        assert_eq!(c.committed(), t.len() as u64);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_csq_panics() {
        InOrderCore::new(0, 0);
    }
}
