use crate::config::{CoreConfig, PersistenceMode};
use crate::events::{EventLog, PipelineEvent};
use crate::ppa::checkpoint::CheckpointImage;
use crate::ppa::csq::{Csq, CsqEntry};
use crate::ppa::mask::MaskReg;
use crate::prf::{PhysReg, Prf};
use crate::rename::RenameTable;
use crate::stats::{CoreStats, RegionEndCause};
use crate::verify::{CoreView, FaultKind, RobSlot};
#[cfg(feature = "verify")]
use crate::verify::{Validator, Violation};
use ppa_isa::{ArchReg, MemRef, Trace, UopKind};
use ppa_mem::MemorySystem;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct DstInfo {
    arch: ArchReg,
    phys: PhysReg,
    /// The architectural register's previous mapping at rename time —
    /// freed when this instruction commits (or deferred if masked).
    prev: Option<PhysReg>,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    pc: u64,
    kind: UopKind,
    srcs: [Option<PhysReg>; 3],
    dst: Option<DstInfo>,
    /// For stores: the physical register holding the data (first source).
    store_data: Option<PhysReg>,
    mem: Option<MemRef>,
    issued: bool,
    complete_at: u64,
    /// Capri barriers: the commit-side ordering handshake has started.
    barrier_armed: bool,
}

/// The cycle-level out-of-order core.
///
/// A 4-wide (configurable) pipeline with register renaming over a unified
/// physical register file, a reorder buffer, an issue queue, and load/store
/// queues — the §2.1 machinery — extended with PPA's additions: the
/// MaskReg, the committed store queue (CSQ), the last-committed-PC
/// register (LCPC), dynamic region formation at free-list exhaustion, and
/// the commit-side hooks for asynchronous store persistence. The same core
/// executes the ReplayCache and Capri baselines by honouring their
/// trace-embedded persist barriers, and the plain baseline by ignoring
/// persistence entirely.
///
/// Drive it with [`Core::run`] for a single core, or step it cycle by
/// cycle with [`Core::step`] under a multi-core system.
///
/// # Examples
///
/// ```
/// use ppa_core::{Core, CoreConfig, PersistenceMode};
/// use ppa_isa::{ArchReg, TraceBuilder};
/// use ppa_mem::{MemConfig, MemorySystem};
///
/// let mut b = TraceBuilder::new("t");
/// b.alu(ArchReg::int(0), &[]);
/// b.store(ArchReg::int(0), 0x100, 42);
/// let trace = b.build();
///
/// let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
/// let mut core = Core::new(CoreConfig::paper_default(PersistenceMode::Ppa), 0);
/// let cycles = core.run(&trace, &mut mem);
/// assert!(cycles > 0);
/// assert_eq!(mem.nvm_image().read(0x100), Some(42));
/// ```
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    id: usize,
    fetch_idx: usize,
    next_seq: u64,
    rob: VecDeque<RobEntry>,
    /// Sequence numbers of dispatched-but-unissued micro-ops, oldest first.
    iq: Vec<u64>,
    prf: Prf,
    rat: RenameTable,
    crt: RenameTable,
    mask: MaskReg,
    csq: Csq,
    /// Physical registers whose redefinition committed while they were
    /// masked; reclaimed at the next region boundary (§3.3).
    deferred_frees: Vec<PhysReg>,
    lcpc: u64,
    committed: u64,
    /// Completion times of in-flight loads occupying LQ entries.
    lq_release: Vec<u64>,
    /// Renamed loads that have not issued yet.
    lq_pending: usize,
    /// Drain times of committed stores still occupying SQ entries.
    sq_release: Vec<u64>,
    /// Renamed stores/clwbs that have not committed yet.
    sq_pending: usize,
    /// A PPA region boundary is in progress at the rename stage.
    barrier_pending: bool,
    region_insts: u64,
    region_stores: u64,
    finished_at: Option<u64>,
    stats: CoreStats,
    event_log: Option<EventLog>,
    /// Attached cycle-level checks (the `verify` feature's hook).
    #[cfg(feature = "verify")]
    validators: Vec<Box<dyn Validator>>,
    /// Per-validator cost accounting, aligned with `validators`.
    #[cfg(feature = "verify")]
    validator_timing: Vec<crate::verify::ValidatorTiming>,
    /// Violations the attached validators have reported so far.
    #[cfg(feature = "verify")]
    violations: Vec<Violation>,
    /// Deliberately injected bugs (mutation self-tests).
    #[cfg(feature = "verify")]
    faults: Vec<FaultKind>,
}

impl Core {
    /// Creates a core with every architectural register mapped to a fresh
    /// physical register holding zero.
    pub fn new(cfg: CoreConfig, id: usize) -> Self {
        let mut prf = Prf::new(cfg.int_prf, cfg.fp_prf);
        let mut rat = RenameTable::new();
        let mut crt = RenameTable::new();
        for a in ArchReg::all() {
            let p = prf
                .allocate(a.class(), 0)
                .expect("PRF larger than architectural state");
            prf.force_architectural(p, 0);
            rat.set(a, p);
            crt.set(a, p);
        }
        let stats = CoreStats::new(&cfg);
        Core {
            id,
            fetch_idx: 0,
            next_seq: 0,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            iq: Vec::with_capacity(cfg.iq_entries),
            prf,
            rat,
            crt,
            mask: MaskReg::new(cfg.int_prf, cfg.fp_prf),
            csq: Csq::new(cfg.csq_entries),
            deferred_frees: Vec::new(),
            lcpc: 0,
            committed: 0,
            lq_release: Vec::new(),
            lq_pending: 0,
            sq_release: Vec::new(),
            sq_pending: 0,
            barrier_pending: false,
            region_insts: 0,
            region_stores: 0,
            finished_at: None,
            stats,
            event_log: None,
            #[cfg(feature = "verify")]
            validators: Vec::new(),
            #[cfg(feature = "verify")]
            validator_timing: Vec::new(),
            #[cfg(feature = "verify")]
            violations: Vec::new(),
            #[cfg(feature = "verify")]
            faults: Vec::new(),
            cfg,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The core's identifier (index into the memory system).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Micro-ops committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The last committed program counter (the LCPC register).
    pub fn lcpc(&self) -> u64 {
        self.lcpc
    }

    /// Current CSQ occupancy (test/diagnostic hook).
    pub fn csq_len(&self) -> usize {
        self.csq.len()
    }

    /// Number of masked physical registers (test/diagnostic hook).
    pub fn masked_count(&self) -> usize {
        self.mask.masked_count()
    }

    /// Starts recording pipeline events (Figure 2/6-style walkthroughs),
    /// keeping at most `capacity` of them.
    pub fn enable_event_log(&mut self, capacity: usize) {
        self.event_log = Some(EventLog::with_capacity(capacity));
    }

    /// The recorded pipeline events, if logging was enabled.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.event_log.as_ref()
    }

    fn log(&mut self, ev: PipelineEvent) {
        if let Some(log) = self.event_log.as_mut() {
            log.push(ev);
        }
    }

    /// Whether the core has committed its whole trace and drained.
    pub fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Cycle at which the core finished, if it has.
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    fn drained(&self, mem: &MemorySystem, now: u64) -> bool {
        match self.cfg.mode {
            PersistenceMode::Baseline => true,
            PersistenceMode::Ppa | PersistenceMode::ReplayCache => {
                mem.persist_outstanding(self.id) == 0
            }
            PersistenceMode::Capri => mem.capri_drained_at(self.id) <= now,
        }
    }

    fn end_region(&mut self, cause: RegionEndCause, now: u64) {
        let reclaimed = self.deferred_frees.len();
        if self.fault_active(FaultKind::LeakDeferredFrees) {
            self.deferred_frees.clear();
        }
        for p in std::mem::take(&mut self.deferred_frees) {
            self.prf.free(p);
        }
        self.mask.clear();
        self.csq.clear();
        self.log(PipelineEvent::RegionEnd {
            cycle: now,
            cause,
            insts: self.region_insts,
            stores: self.region_stores,
            reclaimed,
        });
        self.stats
            .record_region(self.region_insts, self.region_stores, cause);
        self.region_insts = 0;
        self.region_stores = 0;
        #[cfg(debug_assertions)]
        self.check_invariants(now);
    }

    /// Region-boundary sanity check in debug builds, expressed through the
    /// structured snapshot checks of [`crate::verify`] (the old scattered
    /// asserts, now named invariants). Skipped when validators or faults
    /// are attached — structured reporting owns detection then, and a
    /// panic here would pre-empt the violation record the mutation
    /// self-tests assert on.
    #[cfg(debug_assertions)]
    fn check_invariants(&self, now: u64) {
        #[cfg(feature = "verify")]
        if !self.validators.is_empty() || !self.faults.is_empty() {
            return;
        }
        let violations = crate::verify::check_snapshot(&self.verify_view(now));
        assert!(
            violations.is_empty(),
            "invariant violations at a region boundary: {violations:#?}"
        );
    }

    fn rob_entry_mut(&mut self, seq: u64) -> &mut RobEntry {
        let front = self.rob.front().expect("ROB empty").seq;
        &mut self.rob[(seq - front) as usize]
    }

    /// Advances the core one cycle. The caller must advance the memory
    /// system (`mem.tick(now)`) once per cycle as well.
    pub fn step(&mut self, trace: &Trace, mem: &mut MemorySystem, now: u64) {
        if self.finished_at.is_some() {
            return;
        }
        // Figure 5 sampling: free registers, every cycle, at rename.
        self.stats
            .free_int_cdf
            .record(self.prf.free_count(ppa_isa::RegClass::Int) as u64);
        self.stats
            .free_fp_cdf
            .record(self.prf.free_count(ppa_isa::RegClass::Fp) as u64);

        self.lq_release.retain(|&t| t > now);
        self.sq_release.retain(|&t| t > now);

        self.commit(mem, now);
        self.issue(mem, now);
        self.rename(trace, mem, now);

        #[cfg(feature = "verify")]
        self.run_validators(now);

        if self.fetch_idx >= trace.len() && self.rob.is_empty() {
            if self.drained(mem, now) {
                if self.cfg.mode == PersistenceMode::Ppa && self.region_insts > 0 {
                    self.end_region(RegionEndCause::ProgramEnd, now);
                }
                self.finished_at = Some(now + 1);
                self.stats.cycles = now + 1;
            } else {
                // Waiting for the final region's stores to persist.
                self.stats.region_end_stall_cycles += 1;
            }
        }
    }

    fn commit(&mut self, mem: &mut MemorySystem, now: u64) {
        let mut commits = 0;
        while commits < self.cfg.width {
            let Some(head) = self.rob.front() else { break };
            if !head.issued || head.complete_at > now {
                break;
            }
            let kind = head.kind;
            let mem_ref = head.mem;
            let store_data = head.store_data;

            // Ablation: statically forced region boundaries. The next
            // commit after the interval elapses waits for the region's
            // persistence, exactly like an organic boundary.
            if self.cfg.mode == PersistenceMode::Ppa {
                if let Some(interval) = self.cfg.forced_region_interval {
                    if self.region_insts >= interval {
                        if mem.persist_outstanding(self.id) > 0 {
                            self.stats.region_end_stall_cycles += 1;
                            break;
                        }
                        self.end_region(RegionEndCause::Forced, now);
                    }
                }
            }

            // Mode- and kind-specific commit gating.
            match kind {
                UopKind::Store if self.cfg.mode == PersistenceMode::Ppa => {
                    if self.csq.is_full() {
                        if mem.persist_outstanding(self.id) > 0 {
                            self.stats.region_end_stall_cycles += 1;
                            break;
                        }
                        // Implicit region boundary: all prior stores are
                        // persisted, so rotate the region and continue.
                        self.end_region(RegionEndCause::CsqFull, now);
                    }
                    let addr = mem_ref.expect("store has an address").addr;
                    if !mem.persist_has_room(self.id, addr) {
                        self.stats.region_end_stall_cycles += 1;
                        break;
                    }
                }
                UopKind::Sync(_) if self.cfg.mode == PersistenceMode::Ppa => {
                    // §6: a synchronisation primitive cannot commit until
                    // every store of its region is persisted and the CSQ
                    // is emptied.
                    if mem.persist_outstanding(self.id) > 0 {
                        self.stats.region_end_stall_cycles += 1;
                        break;
                    }
                    self.end_region(RegionEndCause::Sync, now);
                }
                UopKind::Clwb => {
                    let addr = mem_ref.expect("clwb has an address").addr;
                    if !mem.clwb_enqueue(self.id, addr, now) {
                        self.stats.barrier_commit_stall_cycles += 1;
                        break;
                    }
                }
                UopKind::PersistBarrier => match self.cfg.mode {
                    PersistenceMode::ReplayCache if mem.persist_outstanding(self.id) > 0 => {
                        self.stats.barrier_commit_stall_cycles += 1;
                        break;
                    }
                    PersistenceMode::Capri => {
                        // The redo buffer is battery-backed: the barrier
                        // waits for room for the next region's worst-case
                        // store bytes (32 insts x 8 B), plus a commit-side
                        // ordering handshake with the redo-buffer
                        // controller (the region cannot be sealed before
                        // its log entries are ordered).
                        if !mem.capri_has_room(self.id, now, 32 * 8) {
                            self.stats.barrier_commit_stall_cycles += 1;
                            break;
                        }
                        let head = self.rob.front_mut().expect("checked above");
                        if !head.barrier_armed {
                            head.barrier_armed = true;
                            head.complete_at = now + self.cfg.capri_barrier_bubble;
                            self.stats.barrier_commit_stall_cycles += 1;
                            break;
                        }
                    }
                    _ => {}
                },
                _ => {}
            }

            let entry = self.rob.pop_front().expect("checked above");

            // Architectural register state: CRT update plus reclamation of
            // the previous mapping (deferred when masked — store integrity).
            if let Some(d) = entry.dst {
                self.crt.set(d.arch, d.phys);
                if let Some(prev) = d.prev {
                    if self.cfg.mode == PersistenceMode::Ppa
                        && self.mask.is_masked(prev)
                        && !self.fault_active(FaultKind::EagerFreeMasked)
                    {
                        self.deferred_frees.push(prev);
                    } else {
                        self.prf.free(prev);
                    }
                }
            }

            // Memory and persistence effects.
            match entry.kind {
                UopKind::Store => {
                    let m = entry.mem.expect("store has a memory reference");
                    let merge_lat = mem.store_merge(self.id, m.addr, now);
                    self.sq_pending -= 1;
                    self.sq_release.push(now + merge_lat);
                    mem.commit_store_value(m.addr, m.value);
                    self.stats.committed_stores += 1;
                    self.region_stores += 1;
                    match self.cfg.mode {
                        PersistenceMode::Ppa => {
                            let data = store_data.expect("PPA stores carry a data register");
                            if !self.fault_active(FaultKind::SkipCsqEntry) {
                                self.csq
                                    .push(CsqEntry {
                                        src: data,
                                        addr: m.addr,
                                        size: m.size,
                                    })
                                    .expect("CSQ rotation guarantees room");
                            }
                            if !self.fault_active(FaultKind::SkipMaskPin) {
                                self.mask.mask(data);
                            }
                            self.log(PipelineEvent::StoreTracked {
                                cycle: now,
                                addr: m.addr,
                                data_reg: data,
                                csq_occupancy: self.csq.len(),
                            });
                            let ok = mem.persist_enqueue(self.id, m.addr, now);
                            debug_assert!(ok, "room was checked before commit");
                        }
                        PersistenceMode::Capri => {
                            mem.capri_enqueue(self.id, m.addr, m.value, m.size as u64, now);
                        }
                        PersistenceMode::ReplayCache | PersistenceMode::Baseline => {}
                    }
                }
                UopKind::Clwb => {
                    // Persist already enqueued in the gating step above.
                    self.sq_pending -= 1;
                    self.sq_release.push(now + 1);
                }
                _ => {}
            }

            self.log(PipelineEvent::Commit {
                cycle: now,
                pc: entry.pc,
                kind: entry.kind,
            });
            self.lcpc = entry.pc;
            self.committed += 1;
            self.stats.committed_uops += 1;
            self.region_insts += 1;
            commits += 1;
        }
    }

    fn issue(&mut self, mem: &mut MemorySystem, now: u64) {
        let mut issued = 0;
        let mut i = 0;
        while i < self.iq.len() && issued < self.cfg.width {
            let seq = self.iq[i];
            let front = self.rob.front().expect("IQ entries live in the ROB").seq;
            let idx = (seq - front) as usize;
            let ready = self.rob[idx]
                .srcs
                .iter()
                .flatten()
                .all(|&s| self.prf.is_ready(s, now));
            if !ready {
                i += 1;
                continue;
            }
            let entry = &self.rob[idx];
            let kind = entry.kind;
            let mem_ref = entry.mem;
            let dst = entry.dst;
            let store_data = entry.store_data;

            let complete_at = match kind {
                UopKind::Load => {
                    let m = mem_ref.expect("load has an address");
                    let lat = mem.load(self.id, m.addr, now);
                    // The loaded value lands in the destination register.
                    if let Some(d) = dst {
                        let v = mem.functional_read(m.addr);
                        self.prf.set_value(d.phys, v);
                    }
                    self.lq_pending -= 1;
                    let done = now + lat;
                    self.lq_release.push(done);
                    done
                }
                UopKind::Store => {
                    // Address generation; the data register is
                    // back-annotated with the stored value so the PRF holds
                    // what recovery will replay.
                    if let Some(data) = store_data {
                        let m = mem_ref.expect("store has a memory reference");
                        self.prf.set_value(data, m.value);
                    }
                    now + u64::from(kind.exec_latency())
                }
                UopKind::Sync(_) => {
                    now + u64::from(kind.exec_latency()) + self.cfg.sync_extra_latency
                }
                _ => now + u64::from(kind.exec_latency()),
            };

            if let Some(d) = dst {
                if kind != UopKind::Load {
                    // ALU semantics are not modelled: give the register a
                    // deterministic token value so it is never garbage.
                    self.prf.set_value(d.phys, self.rob[idx].pc);
                }
                self.prf.set_ready_at(d.phys, complete_at);
            }
            let e = self.rob_entry_mut(seq);
            e.issued = true;
            e.complete_at = complete_at;
            self.iq.remove(i);
            issued += 1;
        }
    }

    fn rename(&mut self, trace: &Trace, mem: &mut MemorySystem, now: u64) {
        // A PPA region boundary blocks renaming until the ROB drains and
        // every store of the region is persisted (§4.2).
        if self.barrier_pending {
            self.stats.rename_stall_cycles += 1;
            self.stats.rename_noreg_stall_cycles += 1;
            if self.rob.is_empty() {
                if mem.persist_outstanding(self.id) == 0 {
                    self.end_region(RegionEndCause::PrfExhausted, now);
                    self.barrier_pending = false;
                } else {
                    self.stats.region_end_stall_cycles += 1;
                    return;
                }
            } else {
                return;
            }
        }

        let mut renamed = 0;
        let mut blocked_no_reg = false;
        let mut blocked_sq = false;
        while renamed < self.cfg.width {
            let Some(u) = trace.get(self.fetch_idx) else {
                break;
            };
            if self.rob.len() >= self.cfg.rob_entries || self.iq.len() >= self.cfg.iq_entries {
                break;
            }
            if u.kind.needs_lq_entry()
                && self.lq_pending + self.lq_release.len() >= self.cfg.lq_entries
            {
                break;
            }
            if u.kind.needs_sq_entry()
                && self.sq_pending + self.sq_release.len() >= self.cfg.sq_entries
            {
                blocked_sq = true;
                break;
            }

            // Destination allocation — the PPA region-boundary trigger.
            let dst = match u.dst {
                Some(arch) => match self.prf.allocate(arch.class(), u64::MAX) {
                    Some(phys) => Some((arch, phys)),
                    None => {
                        blocked_no_reg = true;
                        if self.cfg.mode == PersistenceMode::Ppa && !self.barrier_pending {
                            // Inject a persist barrier right before this
                            // instruction (§4.2).
                            self.barrier_pending = true;
                            self.log(PipelineEvent::BarrierInjected { cycle: now });
                        }
                        break;
                    }
                },
                None => None,
            };

            // Source renaming through the RAT (before the RAT update, so
            // `r0 = r0 + 1` reads the old mapping).
            let mut srcs = [None; 3];
            for (slot, s) in u.sources().enumerate() {
                srcs[slot] = Some(self.rat.get(s).expect("all architectural registers map"));
            }
            let store_data = if u.kind.is_store() { srcs[0] } else { None };
            debug_assert!(
                !u.kind.is_store() || store_data.is_some(),
                "stores must name a data register"
            );

            let dst_info = dst.map(|(arch, phys)| DstInfo {
                arch,
                phys,
                prev: self.rat.set(arch, phys),
            });

            let seq = self.next_seq;
            self.next_seq += 1;
            self.rob.push_back(RobEntry {
                seq,
                pc: u.pc,
                kind: u.kind,
                srcs,
                dst: dst_info,
                store_data,
                mem: u.mem,
                issued: false,
                complete_at: u64::MAX,
                barrier_armed: false,
            });
            self.iq.push(seq);
            if u.kind.needs_lq_entry() {
                self.lq_pending += 1;
            }
            if u.kind.needs_sq_entry() {
                self.sq_pending += 1;
            }
            self.fetch_idx += 1;
            renamed += 1;
        }

        if renamed == 0 && self.fetch_idx < trace.len() {
            self.stats.rename_stall_cycles += 1;
            if blocked_no_reg {
                self.stats.rename_noreg_stall_cycles += 1;
            }
            if blocked_sq {
                self.stats.sq_full_stall_cycles += 1;
            }
        }
    }

    /// Runs the core to completion on a single-core memory system,
    /// returning the cycle count.
    ///
    /// # Panics
    ///
    /// Panics if the core fails to finish within a generous cycle bound
    /// (1000 cycles per micro-op plus a fixed floor), which would indicate
    /// a pipeline deadlock.
    pub fn run(&mut self, trace: &Trace, mem: &mut MemorySystem) -> u64 {
        let limit = 1_000_000 + trace.len() as u64 * 1_000;
        let mut now = 0;
        while !self.is_finished() {
            self.step(trace, mem, now);
            mem.tick(now);
            now += 1;
            assert!(now < limit, "pipeline deadlock after {now} cycles");
        }
        self.stats.cycles
    }

    /// JIT-checkpoints the five structures of §4.5: CSQ, CRT, MaskReg,
    /// LCPC, and the physical registers referenced by CSQ or CRT entries.
    /// In-flight (uncommitted) state is deliberately excluded.
    pub fn jit_checkpoint(&self) -> CheckpointImage {
        let mut regs: Vec<PhysReg> = self.csq.iter().map(|e| e.src).collect();
        regs.extend(self.crt.iter().map(|(_, p)| p));
        regs.sort_unstable();
        regs.dedup();
        CheckpointImage {
            csq: self.csq.iter().copied().collect(),
            crt: self.crt.iter().collect(),
            masked: self.mask.masked_regs().collect(),
            prf_values: regs.iter().map(|&r| (r, self.prf.value(r))).collect(),
            lcpc: self.lcpc,
            committed: self.committed,
        }
    }

    /// Rebuilds a core from a checkpoint (§4.6 steps 1 and 3): restores
    /// the PRF slice, CRT (also populated into the RAT), MaskReg, and CSQ,
    /// and positions the fetch index after the last committed instruction.
    /// Combine with [`crate::replay_stores`] to repair the NVM image
    /// before resuming.
    pub fn recover(cfg: CoreConfig, id: usize, image: &CheckpointImage) -> Self {
        let mut prf = Prf::new(cfg.int_prf, cfg.fp_prf);
        let mut rat = RenameTable::new();
        let mut crt = RenameTable::new();
        for &(a, p) in &image.crt {
            prf.allocate_specific(p);
            prf.force_architectural(p, image.reg_value(p).unwrap_or(0));
            crt.set(a, p);
        }
        rat.copy_from(&crt);
        let mut mask = MaskReg::new(cfg.int_prf, cfg.fp_prf);
        let mut deferred = Vec::new();
        for &p in &image.masked {
            if !prf.is_allocated(p) {
                prf.allocate_specific(p);
                prf.force_architectural(p, image.reg_value(p).unwrap_or(0));
                // Masked but no longer architecturally mapped: its
                // redefinition committed before the failure, so it is
                // reclaimed at the next region boundary.
                deferred.push(p);
            }
            mask.mask(p);
        }
        let csq = Csq::restore(cfg.csq_entries, image.csq.iter().copied());
        let stats = CoreStats::new(&cfg);
        Core {
            id,
            fetch_idx: image.committed as usize,
            next_seq: image.committed,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            iq: Vec::with_capacity(cfg.iq_entries),
            prf,
            rat,
            crt,
            mask,
            csq,
            deferred_frees: deferred,
            lcpc: image.lcpc,
            committed: image.committed,
            lq_release: Vec::new(),
            lq_pending: 0,
            sq_release: Vec::new(),
            sq_pending: 0,
            barrier_pending: false,
            region_insts: 0,
            region_stores: 0,
            finished_at: None,
            stats,
            event_log: None,
            #[cfg(feature = "verify")]
            validators: Vec::new(),
            #[cfg(feature = "verify")]
            validator_timing: Vec::new(),
            #[cfg(feature = "verify")]
            violations: Vec::new(),
            #[cfg(feature = "verify")]
            faults: Vec::new(),
            cfg,
        }
    }

    /// A read-only snapshot of the core's microarchitectural state for
    /// the verification layer (`crate::verify`).
    pub fn verify_view(&self, now: u64) -> CoreView<'_> {
        CoreView {
            cycle: now,
            cfg: &self.cfg,
            id: self.id,
            prf: &self.prf,
            rat: &self.rat,
            crt: &self.crt,
            mask: &self.mask,
            csq: &self.csq,
            deferred: &self.deferred_frees,
            rob: self
                .rob
                .iter()
                .map(|e| RobSlot {
                    seq: e.seq,
                    kind: e.kind,
                    dst: e.dst.map(|d| d.phys),
                    prev: e.dst.and_then(|d| d.prev),
                    srcs: e.srcs,
                    store_data: e.store_data,
                    issued: e.issued,
                })
                .collect(),
            iq: &self.iq,
            lq_pending: self.lq_pending,
            sq_pending: self.sq_pending,
            region_stores: self.region_stores,
            regions_completed: self.stats.regions,
        }
    }

    /// Whether a deliberately injected fault is armed.
    fn fault_active(&self, _fault: FaultKind) -> bool {
        #[cfg(feature = "verify")]
        {
            self.faults.contains(&_fault)
        }
        #[cfg(not(feature = "verify"))]
        {
            false
        }
    }

    #[cfg(feature = "verify")]
    fn run_validators(&mut self, now: u64) {
        if self.validators.is_empty() {
            return;
        }
        // Detach the validator list so the checks can borrow `self`
        // immutably through the view.
        let mut validators = std::mem::take(&mut self.validators);
        let mut timing = std::mem::take(&mut self.validator_timing);
        let mut violations = std::mem::take(&mut self.violations);
        {
            let view = self.verify_view(now);
            for (v, t) in validators.iter_mut().zip(timing.iter_mut()) {
                let t0 = std::time::Instant::now();
                v.check(&view, &mut violations);
                t.elapsed += t0.elapsed();
                t.cycles += 1;
            }
        }
        self.validators = validators;
        self.validator_timing = timing;
        self.violations = violations;
    }
}

/// Verification hooks, available with the `verify` cargo feature. The
/// per-cycle validator pass only runs when at least one validator is
/// attached, so even verify-enabled builds pay nothing by default.
#[cfg(feature = "verify")]
impl Core {
    /// Attaches one cycle-level check.
    pub fn attach_validator(&mut self, v: Box<dyn Validator>) {
        self.validator_timing
            .push(crate::verify::ValidatorTiming::new(v.name()));
        self.validators.push(v);
    }

    /// Attaches the full built-in suite ([`crate::verify::default_validators`]).
    pub fn attach_default_validators(&mut self) {
        for v in crate::verify::default_validators() {
            self.attach_validator(v);
        }
    }

    /// Violations reported so far by attached validators.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Per-validator cost accounting: how many cycles each attached
    /// validator has checked and how much wall time it spent doing so.
    /// `ppa-verify check` aggregates these into the
    /// `verify.check.validator.<name>.*` metrics, the measurement
    /// baseline for the ROADMAP's dirty-set optimization.
    pub fn validator_timings(&self) -> &[crate::verify::ValidatorTiming] {
        &self.validator_timing
    }

    /// Drains the recorded violations.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Arms a deliberately injected bug. The mutation self-tests use this
    /// to prove the checker detects real implementation errors.
    pub fn inject_fault(&mut self, fault: FaultKind) {
        self.faults.push(fault);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppa::recovery::replay_stores;
    use ppa_isa::transform::{CapriPass, ReplayCachePass, TracePass};
    use ppa_isa::{SyncKind, TraceBuilder};
    use ppa_mem::MemConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig::memory_mode(), 1)
    }

    fn core(mode: PersistenceMode) -> Core {
        Core::new(CoreConfig::paper_default(mode), 0)
    }

    /// A compute/store loop with a SPEC-like mix (~11% stores) over a
    /// small, hot working set, like a store-locality-rich kernel.
    fn store_loop(n: u64) -> Trace {
        let mut b = TraceBuilder::new("loop");
        for i in 0..n {
            let r = ArchReg::int((i % 8) as u8);
            for _ in 0..4 {
                b.alu(r, &[r]);
            }
            b.load(ArchReg::int(((i + 1) % 8) as u8), 0x9000 + (i % 32) * 8);
            for _ in 0..3 {
                b.alu(r, &[r]);
            }
            b.store(r, 0x1000 + (i % 8) * 64 + (i / 8 % 8) * 8, i + 1);
        }
        b.build()
    }

    #[test]
    fn baseline_commits_everything() {
        let trace = store_loop(50);
        let mut m = mem();
        let mut c = core(PersistenceMode::Baseline);
        let cycles = c.run(&trace, &mut m);
        assert!(cycles > 0);
        assert_eq!(c.committed(), trace.len() as u64);
        assert!(m.functional_read(0x1000) >= 1);
    }

    #[test]
    fn lcpc_tracks_last_commit() {
        let trace = store_loop(5);
        let mut m = mem();
        let mut c = core(PersistenceMode::Baseline);
        c.run(&trace, &mut m);
        assert_eq!(c.lcpc(), trace[trace.len() - 1].pc);
    }

    #[test]
    fn ppa_persists_all_stores_by_completion() {
        let trace = store_loop(40);
        let mut m = mem();
        let mut c = core(PersistenceMode::Ppa);
        c.run(&trace, &mut m);
        // Every committed store value must be durable: PPA drains the last
        // region before finishing.
        assert!(m.nvm_image().diff(m.arch_mem()).is_empty());
    }

    #[test]
    fn baseline_leaves_nvm_inconsistent() {
        let trace = store_loop(40);
        let mut m = mem();
        let mut c = core(PersistenceMode::Baseline);
        c.run(&trace, &mut m);
        // With stores only in volatile caches, the NVM image lags.
        assert!(
            !m.nvm_image().diff(m.arch_mem()).is_empty(),
            "baseline must exhibit the crash inconsistency PPA repairs"
        );
    }

    #[test]
    fn ppa_overhead_is_small_on_compute_heavy_code() {
        let trace = store_loop(500);
        let mut mb = mem();
        let mut base = core(PersistenceMode::Baseline);
        let bc = base.run(&trace, &mut mb);
        let mut mp = mem();
        let mut ppa = core(PersistenceMode::Ppa);
        let pc = ppa.run(&trace, &mut mp);
        let slow = pc as f64 / bc as f64;
        assert!(slow < 1.35, "PPA slowdown {slow} too high");
    }

    #[test]
    fn ppa_forms_regions_on_prf_exhaustion() {
        // Every instruction defines a register, so the free list drains and
        // a small PRF forces frequent boundaries.
        let mut b = TraceBuilder::new("defs");
        for i in 0..600u64 {
            let r = ArchReg::int((i % 8) as u8);
            b.alu(r, &[]);
            if i % 10 == 0 {
                b.store(r, 0x2000 + i * 8, i);
            }
        }
        let trace = b.build();
        let cfg = CoreConfig::paper_default(PersistenceMode::Ppa).with_prf(48, 48);
        let mut c = Core::new(cfg, 0);
        let mut m = mem();
        c.run(&trace, &mut m);
        assert!(
            c.stats().region_ends_prf > 0,
            "PRF exhaustion must split regions"
        );
        assert!(c.stats().regions > 1);
    }

    #[test]
    fn csq_full_is_an_implicit_boundary() {
        // More stores than CSQ entries without exhausting the PRF.
        let mut b = TraceBuilder::new("stores");
        for i in 0..50u64 {
            b.store(ArchReg::int(0), 0x3000 + i * 64, i);
        }
        let trace = b.build();
        let cfg = CoreConfig::paper_default(PersistenceMode::Ppa).with_csq(8);
        let mut c = Core::new(cfg, 0);
        let mut m = mem();
        c.run(&trace, &mut m);
        assert!(c.stats().csq_full_boundaries > 0);
        assert!(m.nvm_image().diff(m.arch_mem()).is_empty());
    }

    #[test]
    fn sync_primitives_end_regions_under_ppa() {
        let mut b = TraceBuilder::new("sync");
        b.store(ArchReg::int(0), 0x100, 1);
        b.sync(SyncKind::AtomicRmw);
        b.store(ArchReg::int(1), 0x200, 2);
        let trace = b.build();
        let mut c = core(PersistenceMode::Ppa);
        let mut m = mem();
        c.run(&trace, &mut m);
        assert!(c.stats().region_ends_sync >= 1);
    }

    #[test]
    fn replaycache_slower_than_ppa() {
        let raw = store_loop(300);
        let rc_trace = ReplayCachePass::new().apply(&raw);
        let mut m1 = MemorySystem::new(
            MemConfig {
                persist_coalescing: false,
                ..MemConfig::memory_mode()
            },
            1,
        );
        let mut rc = core(PersistenceMode::ReplayCache);
        let rc_cycles = rc.run(&rc_trace, &mut m1);

        let mut m2 = mem();
        let mut ppa = core(PersistenceMode::Ppa);
        let ppa_cycles = ppa.run(&raw, &mut m2);
        assert!(
            rc_cycles as f64 > 1.5 * ppa_cycles as f64,
            "ReplayCache ({rc_cycles}) should be much slower than PPA ({ppa_cycles})"
        );
        // Both must still be crash consistent at completion.
        assert!(m1.nvm_image().diff(m1.arch_mem()).is_empty());
        assert!(m2.nvm_image().diff(m2.arch_mem()).is_empty());
    }

    #[test]
    fn capri_persists_through_redo_path() {
        let raw = store_loop(100);
        let capri_trace = CapriPass::new().apply(&raw);
        let mut m = mem();
        let mut c = core(PersistenceMode::Capri);
        c.run(&capri_trace, &mut m);
        assert!(m.nvm_image().diff(m.arch_mem()).is_empty());
        assert!(c.stats().barrier_commit_stall_cycles > 0 || c.stats().cycles > 0);
    }

    #[test]
    fn checkpoint_recover_replay_restores_consistency() {
        let trace = store_loop(200);
        let mut m = mem();
        let mut c = core(PersistenceMode::Ppa);
        // Run part-way, then cut power.
        for now in 0..2_000 {
            c.step(&trace, &mut m, now);
            m.tick(now);
        }
        assert!(c.committed() > 0, "must have made progress");
        let image = c.jit_checkpoint();
        m.power_failure();
        // Without replay the NVM may be inconsistent for committed stores;
        // after replay it must match architectural memory exactly.
        let report = replay_stores(&image, m.nvm_image_mut());
        assert_eq!(report.resume_index, c.committed());
        let diff = m.nvm_image().diff(m.arch_mem());
        assert!(diff.is_empty(), "recovery left {} bad words", diff.len());
    }

    #[test]
    fn recovered_core_resumes_and_completes() {
        let trace = store_loop(120);
        let mut m = mem();
        let mut c = core(PersistenceMode::Ppa);
        for now in 0..1_500 {
            c.step(&trace, &mut m, now);
            m.tick(now);
        }
        let before = c.committed();
        let image = c.jit_checkpoint();
        m.power_failure();
        replay_stores(&image, m.nvm_image_mut());

        let mut recovered = Core::recover(c.cfg, 0, &image);
        assert_eq!(recovered.committed(), before);
        recovered.run(&trace, &mut m);
        assert_eq!(recovered.committed(), trace.len() as u64);
        assert!(m.nvm_image().diff(m.arch_mem()).is_empty());
    }

    #[test]
    fn masked_registers_survive_redefinition() {
        // str r0; then redefine r0: the store's physical register must not
        // be freed until the region ends.
        let mut b = TraceBuilder::new("war");
        let r0 = ArchReg::int(0);
        b.alu(r0, &[]);
        b.store(r0, 0x100, 42);
        b.alu(r0, &[r0]); // redefinition commits while p(r0) is masked
        let trace = b.build();
        let mut m = mem();
        let mut c = core(PersistenceMode::Ppa);
        // Step until everything committed but before final drain finishes.
        let mut now = 0;
        while c.committed() < 3 {
            c.step(&trace, &mut m, now);
            m.tick(now);
            now += 1;
            assert!(now < 100_000);
        }
        let image = c.jit_checkpoint();
        assert_eq!(image.csq.len(), 1);
        let entry = image.csq[0];
        assert_eq!(image.reg_value(entry.src), Some(42));
        assert_eq!(c.masked_count(), 1);
    }

    #[test]
    fn free_register_cdf_is_sampled() {
        let trace = store_loop(50);
        let mut m = mem();
        let mut c = core(PersistenceMode::Ppa);
        c.run(&trace, &mut m);
        assert_eq!(c.stats().free_int_cdf.total(), c.stats().cycles);
    }

    #[test]
    fn region_sizes_are_recorded() {
        let mut b = TraceBuilder::new("defs");
        for i in 0..2_000u64 {
            b.alu(ArchReg::int((i % 8) as u8), &[]);
            if i % 16 == 0 {
                b.store(ArchReg::int((i % 8) as u8), 0x8000 + i * 8, i);
            }
        }
        let trace = b.build();
        let cfg = CoreConfig::paper_default(PersistenceMode::Ppa).with_prf(64, 64);
        let mut c = Core::new(cfg, 0);
        let mut m = mem();
        c.run(&trace, &mut m);
        assert!(c.stats().regions > 2);
        assert!(c.stats().region_insts.mean() > 1.0);
    }

    #[test]
    fn in_order_commit_is_preserved() {
        // A slow divide followed by a fast ALU op: the ALU op completes
        // first but must not commit first (LCPC would go backwards).
        let mut b = TraceBuilder::new("order");
        b.push(ppa_isa::Uop::new(0, UopKind::IntDiv).with_dst(ArchReg::int(0)));
        b.alu(ArchReg::int(1), &[]);
        let trace = b.build();
        let mut m = mem();
        let mut c = core(PersistenceMode::Baseline);
        c.run(&trace, &mut m);
        assert_eq!(c.lcpc(), trace[1].pc);
        assert_eq!(c.committed(), 2);
    }

    #[test]
    fn event_log_narrates_the_pipeline() {
        let mut b = TraceBuilder::new("t");
        let r0 = ArchReg::int(0);
        b.alu(r0, &[]);
        b.store(r0, 0x100, 42);
        b.alu(r0, &[r0]);
        let trace = b.build();
        let mut m = mem();
        let mut c = core(PersistenceMode::Ppa);
        c.enable_event_log(64);
        c.run(&trace, &mut m);
        let log = c.event_log().expect("enabled");
        let events = log.events();
        // Three commits, one tracked store, one program-end region.
        let commits = events
            .iter()
            .filter(|e| matches!(e, crate::events::PipelineEvent::Commit { .. }))
            .count();
        assert_eq!(commits, 3);
        let tracked: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                crate::events::PipelineEvent::StoreTracked {
                    addr,
                    csq_occupancy,
                    ..
                } => Some((*addr, *csq_occupancy)),
                _ => None,
            })
            .collect();
        assert_eq!(tracked, vec![(0x100, 1)]);
        let region_ends = events
            .iter()
            .filter(|e| matches!(e, crate::events::PipelineEvent::RegionEnd { .. }))
            .count();
        assert_eq!(region_ends, 1, "the final drain ends the only region");
        // Events are time-ordered.
        for w in events.windows(2) {
            assert!(w[0].cycle() <= w[1].cycle());
        }
    }

    #[test]
    fn event_log_captures_prf_exhaustion_barriers() {
        let mut b = TraceBuilder::new("defs");
        for i in 0..600u64 {
            let r = ArchReg::int((i % 8) as u8);
            b.alu(r, &[]);
            if i % 10 == 0 {
                b.store(r, 0x2000 + i * 8, i);
            }
        }
        let trace = b.build();
        let cfg = CoreConfig::paper_default(PersistenceMode::Ppa).with_prf(48, 48);
        let mut c = Core::new(cfg, 0);
        c.enable_event_log(100_000);
        let mut m = mem();
        c.run(&trace, &mut m);
        let barriers = c
            .event_log()
            .unwrap()
            .events()
            .iter()
            .filter(|e| matches!(e, crate::events::PipelineEvent::BarrierInjected { .. }))
            .count();
        assert!(barriers > 0, "small PRF must trigger barrier injections");
        assert_eq!(barriers as u64, c.stats().region_ends_prf);
    }

    #[test]
    fn forced_regions_override_dynamic_formation() {
        let trace = store_loop(100);
        let cfg = CoreConfig::paper_default(PersistenceMode::Ppa).with_forced_regions(50);
        let mut c = Core::new(cfg, 0);
        let mut m = mem();
        c.run(&trace, &mut m);
        assert!(c.stats().region_ends_forced > 0);
        // Regions cannot exceed the forced interval by more than a commit
        // group (the boundary check runs before each commit).
        assert!(c.stats().region_insts.max() <= 51.0);
        assert!(m.nvm_image().diff(m.arch_mem()).is_empty());
    }

    #[test]
    fn baseline_and_ppa_commit_identical_architectural_state() {
        let trace = store_loop(100);
        let mut m1 = mem();
        let mut c1 = core(PersistenceMode::Baseline);
        c1.run(&trace, &mut m1);
        let mut m2 = mem();
        let mut c2 = core(PersistenceMode::Ppa);
        c2.run(&trace, &mut m2);
        for i in 0..100u64 {
            let addr = 0x1000 + (i % 8) * 64 + (i / 8 % 8) * 8;
            assert_eq!(m1.functional_read(addr), m2.functional_read(addr));
        }
    }
}
