//! The Persistent Processor Architecture core model.
//!
//! This crate is the paper's primary contribution rebuilt in Rust: a
//! cycle-level out-of-order core (§2.1's renaming machinery — RAT, CRT,
//! free list, unified PRF — plus ROB, issue queue, and load/store queues)
//! extended with PPA's whole-system-persistence hardware:
//!
//! * **MaskReg** ([`MaskReg`]) — one bit per physical register, marking
//!   committed-store data registers that must not be reclaimed (§3.3);
//! * **CSQ** ([`Csq`]) — the committed store queue recording each region's
//!   stores for post-failure replay (§4.4);
//! * **LCPC** — the last-committed program counter, from which execution
//!   resumes after recovery;
//! * **dynamic region formation** — a persist barrier injected whenever
//!   renaming runs out of physical registers (§4.2), at synchronisation
//!   primitives (§6), or when the CSQ fills;
//! * **JIT checkpointing** ([`CheckpointController`], [`CheckpointImage`])
//!   and the **recovery protocol** ([`replay_stores`], [`Core::recover`])
//!   of §4.5–4.6;
//! * an **in-order variant** ([`InOrderCore`]) with a value-carrying CSQ,
//!   as sketched in §6;
//! * a **verification layer** ([`verify`]) — pluggable cycle-level
//!   invariant checks (store integrity, rename consistency, CSQ ordering,
//!   free-list health) hooked into [`Core::step`] behind the `verify`
//!   cargo feature, so release simulation pays nothing.
//!
//! The same pipeline also executes the paper's software baselines
//! (ReplayCache and Capri) by honouring trace-embedded persist barriers —
//! see [`PersistenceMode`].
//!
//! # Examples
//!
//! ```
//! use ppa_core::{Core, CoreConfig, PersistenceMode, replay_stores};
//! use ppa_isa::{ArchReg, TraceBuilder};
//! use ppa_mem::{MemConfig, MemorySystem};
//!
//! // Run a tiny program under PPA, cut power mid-flight, recover, and
//! // verify crash consistency.
//! let mut b = TraceBuilder::new("demo");
//! for i in 0..64u64 {
//!     b.alu(ArchReg::int(0), &[]);
//!     b.store(ArchReg::int(0), 0x1000 + i * 64, i);
//! }
//! let trace = b.build();
//!
//! let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
//! let mut core = Core::new(CoreConfig::paper_default(PersistenceMode::Ppa), 0);
//! for now in 0..500 {
//!     core.step(&trace, &mut mem, now);
//!     mem.tick(now);
//! }
//! let image = core.jit_checkpoint();
//! mem.power_failure();
//! replay_stores(&image, mem.nvm_image_mut());
//! assert!(mem.nvm_image().diff(mem.arch_mem()).is_empty());
//! ```

mod config;
mod events;
mod inorder;
mod pipeline;
pub mod ppa;
mod prf;
mod rename;
mod stats;
pub mod verify;

pub use config::{CoreConfig, PersistenceMode};
pub use events::{EventLog, PipelineEvent};
pub use inorder::InOrderCore;
pub use pipeline::Core;
pub use ppa::{
    deserialize_images, replay_stores, serialize_images, CheckpointController, CheckpointImage,
    CkptState, Csq, CsqEntry, IndexWalker, MaskReg, RecoveryReport,
};
pub use prf::{PhysReg, Prf};
pub use rename::RenameTable;
pub use stats::{CoreStats, RegionEndCause};
