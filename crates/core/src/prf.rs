use ppa_isa::RegClass;
use std::fmt;

/// A physical register: class plus index within the class's bank.
///
/// # Examples
///
/// ```
/// use ppa_core::PhysReg;
/// use ppa_isa::RegClass;
///
/// let p = PhysReg::new(RegClass::Int, 5);
/// assert_eq!(p.to_string(), "pi5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg {
    class: RegClass,
    index: u16,
}

impl PhysReg {
    /// Creates a physical register identifier.
    pub const fn new(class: RegClass, index: u16) -> Self {
        PhysReg { class, index }
    }

    /// The register's bank.
    pub const fn class(self) -> RegClass {
        self.class
    }

    /// The register's index within its bank.
    pub const fn index(self) -> u16 {
        self.index
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "pi{}", self.index),
            RegClass::Fp => write!(f, "pf{}", self.index),
        }
    }
}

#[derive(Debug, Clone)]
struct Bank {
    values: Vec<u64>,
    /// Cycle at which the register's value becomes available; `0` for
    /// architectural/initial values.
    ready_at: Vec<u64>,
    free: Vec<u16>,
    allocated: Vec<bool>,
}

impl Bank {
    fn new(size: usize) -> Self {
        Bank {
            values: vec![0; size],
            ready_at: vec![0; size],
            // Free list as a stack; lowest indices allocated first.
            free: (0..size as u16).rev().collect(),
            allocated: vec![false; size],
        }
    }
}

/// The unified physical register file: an integer bank and an FP bank,
/// each with a free list, per-register values, and readiness times.
///
/// Values are "as observed at memory operations": loads deposit the loaded
/// word, and stores back-annotate their data register with the stored
/// value (ALU semantics are not modelled). This is exactly the set of
/// values PPA's recovery needs, since replay only ever reads store data
/// registers.
///
/// # Examples
///
/// ```
/// use ppa_core::Prf;
/// use ppa_isa::RegClass;
///
/// let mut prf = Prf::new(180, 168);
/// assert_eq!(prf.free_count(RegClass::Int), 180);
/// let p = prf.allocate(RegClass::Int, 10).expect("has free registers");
/// assert_eq!(prf.free_count(RegClass::Int), 179);
/// prf.free(p);
/// assert_eq!(prf.free_count(RegClass::Int), 180);
/// ```
#[derive(Debug, Clone)]
pub struct Prf {
    int: Bank,
    fp: Bank,
}

impl Prf {
    /// Creates a PRF with the given bank sizes, all registers free.
    pub fn new(int_size: usize, fp_size: usize) -> Self {
        Prf {
            int: Bank::new(int_size),
            fp: Bank::new(fp_size),
        }
    }

    fn bank(&self, class: RegClass) -> &Bank {
        match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }

    fn bank_mut(&mut self, class: RegClass) -> &mut Bank {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }

    /// Bank size for a class.
    pub fn size(&self, class: RegClass) -> usize {
        self.bank(class).values.len()
    }

    /// Number of free registers in a class — the quantity Figure 5 samples
    /// every cycle and the trigger for PPA's region boundaries.
    pub fn free_count(&self, class: RegClass) -> usize {
        self.bank(class).free.len()
    }

    /// Allocates a register from the class's free list, marking it ready
    /// at `ready_at`. Returns `None` when the free list is empty (PPA's
    /// region-boundary trigger).
    pub fn allocate(&mut self, class: RegClass, ready_at: u64) -> Option<PhysReg> {
        let bank = self.bank_mut(class);
        let idx = bank.free.pop()?;
        bank.allocated[idx as usize] = true;
        bank.ready_at[idx as usize] = ready_at;
        Some(PhysReg::new(class, idx))
    }

    /// Returns a register to its free list.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the register is already free — a
    /// double-free would corrupt renaming invariants.
    pub fn free(&mut self, reg: PhysReg) {
        let bank = self.bank_mut(reg.class());
        debug_assert!(bank.allocated[reg.index() as usize], "double free of {reg}");
        bank.allocated[reg.index() as usize] = false;
        bank.free.push(reg.index());
    }

    /// Whether the register is currently allocated.
    pub fn is_allocated(&self, reg: PhysReg) -> bool {
        self.bank(reg.class()).allocated[reg.index() as usize]
    }

    /// The register's value.
    pub fn value(&self, reg: PhysReg) -> u64 {
        self.bank(reg.class()).values[reg.index() as usize]
    }

    /// Sets the register's value (load result or store back-annotation).
    pub fn set_value(&mut self, reg: PhysReg, value: u64) {
        self.bank_mut(reg.class()).values[reg.index() as usize] = value;
    }

    /// Cycle at which the register's value is available.
    pub fn ready_at(&self, reg: PhysReg) -> u64 {
        self.bank(reg.class()).ready_at[reg.index() as usize]
    }

    /// Updates the readiness time (set when the producing op issues).
    pub fn set_ready_at(&mut self, reg: PhysReg, at: u64) {
        self.bank_mut(reg.class()).ready_at[reg.index() as usize] = at;
    }

    /// Whether the register's value is available at `now`.
    pub fn is_ready(&self, reg: PhysReg, now: u64) -> bool {
        self.ready_at(reg) <= now
    }

    /// Marks an allocated register as holding an architectural value that
    /// is immediately available (used when seeding initial mappings and
    /// when rebuilding state during power-failure recovery).
    pub fn force_architectural(&mut self, reg: PhysReg, value: u64) {
        let bank = self.bank_mut(reg.class());
        bank.values[reg.index() as usize] = value;
        bank.ready_at[reg.index() as usize] = 0;
    }

    /// Allocates a *specific* register (recovery: re-establish checkpointed
    /// mappings).
    ///
    /// # Panics
    ///
    /// Panics if the register is already allocated.
    pub fn allocate_specific(&mut self, reg: PhysReg) {
        let bank = self.bank_mut(reg.class());
        assert!(
            !bank.allocated[reg.index() as usize],
            "{reg} is already allocated"
        );
        bank.allocated[reg.index() as usize] = true;
        bank.free.retain(|&i| i != reg.index());
    }

    /// Iterator over every register of a class.
    pub fn regs(&self, class: RegClass) -> impl Iterator<Item = PhysReg> + '_ {
        (0..self.size(class) as u16).map(move |i| PhysReg::new(class, i))
    }

    /// Iterator over the class's free list, in stack order. Exposed for
    /// the verification layer's duplicate/overlap checks.
    pub fn free_regs(&self, class: RegClass) -> impl Iterator<Item = PhysReg> + '_ {
        self.bank(class)
            .free
            .iter()
            .map(move |&i| PhysReg::new(class, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_exhausts_free_list() {
        let mut prf = Prf::new(2, 2);
        assert!(prf.allocate(RegClass::Int, 0).is_some());
        assert!(prf.allocate(RegClass::Int, 0).is_some());
        assert!(prf.allocate(RegClass::Int, 0).is_none());
        assert_eq!(prf.free_count(RegClass::Int), 0);
        // FP bank unaffected.
        assert_eq!(prf.free_count(RegClass::Fp), 2);
    }

    #[test]
    fn free_returns_register_for_reuse() {
        let mut prf = Prf::new(1, 1);
        let p = prf.allocate(RegClass::Fp, 0).unwrap();
        assert!(prf.is_allocated(p));
        prf.free(p);
        assert!(!prf.is_allocated(p));
        assert_eq!(prf.allocate(RegClass::Fp, 0), Some(p));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let mut prf = Prf::new(1, 1);
        let p = prf.allocate(RegClass::Int, 0).unwrap();
        prf.free(p);
        prf.free(p);
    }

    #[test]
    fn values_and_readiness() {
        let mut prf = Prf::new(4, 4);
        let p = prf.allocate(RegClass::Int, 100).unwrap();
        assert!(!prf.is_ready(p, 99));
        assert!(prf.is_ready(p, 100));
        prf.set_value(p, 42);
        assert_eq!(prf.value(p), 42);
        prf.set_ready_at(p, 200);
        assert!(!prf.is_ready(p, 150));
    }

    #[test]
    fn allocate_specific_removes_from_free_list() {
        let mut prf = Prf::new(4, 4);
        let target = PhysReg::new(RegClass::Int, 2);
        prf.allocate_specific(target);
        assert!(prf.is_allocated(target));
        assert_eq!(prf.free_count(RegClass::Int), 3);
        // The specific register is never handed out again.
        for _ in 0..3 {
            assert_ne!(prf.allocate(RegClass::Int, 0), Some(target));
        }
        assert!(prf.allocate(RegClass::Int, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn allocate_specific_twice_panics() {
        let mut prf = Prf::new(4, 4);
        let target = PhysReg::new(RegClass::Int, 2);
        prf.allocate_specific(target);
        prf.allocate_specific(target);
    }

    #[test]
    fn force_architectural_is_immediately_ready() {
        let mut prf = Prf::new(2, 2);
        let p = prf.allocate(RegClass::Int, 500).unwrap();
        prf.force_architectural(p, 9);
        assert!(prf.is_ready(p, 0));
        assert_eq!(prf.value(p), 9);
    }
}
