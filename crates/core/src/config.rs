/// Persistence scheme executed by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistenceMode {
    /// No persistence support: the PMEM memory-mode baseline the paper
    /// normalises everything against (and also how the eADR/BBB "ideal
    /// PSP" core behaves — its batteries need no core cooperation).
    Baseline,
    /// Persistent Processor Architecture: MaskReg + CSQ + LCPC, dynamic
    /// region formation, asynchronous store persistence (this paper).
    Ppa,
    /// ReplayCache (MICRO '21): compiler-formed store-integrity regions
    /// with a `clwb` per store; traces must be pre-processed with
    /// [`ppa_isa::transform::ReplayCachePass`].
    ReplayCache,
    /// Capri (HPDC '22): compiler-formed regions with a battery-backed
    /// redo buffer draining over a dedicated persist path; traces must be
    /// pre-processed with [`ppa_isa::transform::CapriPass`].
    Capri,
}

impl PersistenceMode {
    /// Whether the scheme provides whole-system persistence.
    pub const fn is_wsp(self) -> bool {
        !matches!(self, PersistenceMode::Baseline)
    }

    /// Whether traces for this mode must carry compiler-inserted persist
    /// barriers.
    pub const fn needs_compiled_trace(self) -> bool {
        matches!(self, PersistenceMode::ReplayCache | PersistenceMode::Capri)
    }
}

/// Out-of-order core configuration (Table 2 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Pipeline width (fetch/rename/issue/commit per cycle).
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Issue-queue entries.
    pub iq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Integer physical registers (unified PRF, integer bank).
    pub int_prf: usize,
    /// Floating-point physical registers.
    pub fp_prf: usize,
    /// Committed-store-queue entries (PPA).
    pub csq_entries: usize,
    /// Persistence scheme.
    pub mode: PersistenceMode,
    /// Extra commit latency charged to synchronisation primitives to model
    /// cross-core contention (set per workload by the system layer).
    pub sync_extra_latency: u64,
    /// Pipeline bubble at each Capri region barrier (the barrier is an
    /// ordering point between the core and the redo-buffer controller).
    pub capri_barrier_bubble: u64,
    /// Ablation: force a PPA region boundary every N committed
    /// instructions, overriding dynamic formation. `None` (the default)
    /// is PPA's contribution — regions sized by free-list pressure.
    pub forced_region_interval: Option<u64>,
}

impl CoreConfig {
    /// Table 2's Skylake-class core: 4-wide, ROB/IQ/SQ/LQ = 224/97/56/72,
    /// 180/168 integer/FP physical registers, 40-entry CSQ.
    pub fn paper_default(mode: PersistenceMode) -> Self {
        CoreConfig {
            width: 4,
            rob_entries: 224,
            iq_entries: 97,
            sq_entries: 56,
            lq_entries: 72,
            int_prf: 180,
            fp_prf: 168,
            csq_entries: 40,
            mode,
            sync_extra_latency: 20,
            capri_barrier_bubble: 3,
            forced_region_interval: None,
        }
    }

    /// Ablation helper: statically sized regions of `n` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_forced_regions(mut self, n: u64) -> Self {
        assert!(n > 0, "region interval must be positive");
        self.forced_region_interval = Some(n);
        self
    }

    /// The Figure 16 PRF sweep helper: same core with `int_prf`/`fp_prf`
    /// replaced.
    ///
    /// # Panics
    ///
    /// Panics if either bank is smaller than its architectural register
    /// count (renaming would deadlock immediately).
    pub fn with_prf(mut self, int_prf: usize, fp_prf: usize) -> Self {
        assert!(
            int_prf > ppa_isa::NUM_INT_ARCH_REGS && fp_prf > ppa_isa::NUM_FP_ARCH_REGS,
            "PRF must exceed the architectural register count"
        );
        self.int_prf = int_prf;
        self.fp_prf = fp_prf;
        self
    }

    /// The Figure 17 CSQ sweep helper.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn with_csq(mut self, entries: usize) -> Self {
        assert!(entries > 0, "CSQ needs at least one entry");
        self.csq_entries = entries;
        self
    }

    /// Total physical registers across both banks (sizes MaskReg).
    pub fn total_prf(&self) -> usize {
        self.int_prf + self.fp_prf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let c = CoreConfig::paper_default(PersistenceMode::Ppa);
        assert_eq!(c.width, 4);
        assert_eq!(c.rob_entries, 224);
        assert_eq!(c.iq_entries, 97);
        assert_eq!(c.sq_entries, 56);
        assert_eq!(c.lq_entries, 72);
        assert_eq!(c.int_prf, 180);
        assert_eq!(c.fp_prf, 168);
        assert_eq!(c.csq_entries, 40);
        assert_eq!(c.total_prf(), 348);
    }

    #[test]
    fn mode_properties() {
        assert!(!PersistenceMode::Baseline.is_wsp());
        assert!(PersistenceMode::Ppa.is_wsp());
        assert!(!PersistenceMode::Ppa.needs_compiled_trace());
        assert!(PersistenceMode::ReplayCache.needs_compiled_trace());
        assert!(PersistenceMode::Capri.needs_compiled_trace());
    }

    #[test]
    fn prf_sweep_helper() {
        let c = CoreConfig::paper_default(PersistenceMode::Ppa).with_prf(80, 80);
        assert_eq!(c.int_prf, 80);
        assert_eq!(c.fp_prf, 80);
    }

    #[test]
    #[should_panic(expected = "exceed the architectural")]
    fn prf_below_arch_count_panics() {
        CoreConfig::paper_default(PersistenceMode::Ppa).with_prf(16, 80);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_csq_panics() {
        CoreConfig::paper_default(PersistenceMode::Ppa).with_csq(0);
    }
}
