//! Cycle-level invariant checking for the PPA core.
//!
//! PPA's correctness argument rests on microarchitectural invariants —
//! store integrity (a committed store's data register stays pinned by
//! MaskReg until its region persists), rename-table consistency, CSQ
//! FIFO ordering, free-list integrity — that the simulator used to
//! spot-check with scattered `assert!`s. This module turns those into
//! *structured, named* checks: a [`Validator`] is a pluggable check that
//! inspects a read-only [`CoreView`] of the pipeline each cycle and
//! reports [`Violation`]s instead of panicking.
//!
//! The per-cycle hook in [`crate::Core::step`] only exists when the
//! `verify` cargo feature is enabled, so release simulation pays nothing.
//! The checks themselves are always compiled (they are plain functions
//! over a snapshot) and back the debug-build region-boundary assertions.
//!
//! # Examples
//!
//! ```
//! use ppa_core::verify::{default_validators, InvariantKind};
//!
//! let names: Vec<_> = default_validators().iter().map(|v| v.name()).collect();
//! assert!(names.contains(&"free-list"));
//! assert_eq!(InvariantKind::PrfLeak.name(), "prf-leak");
//! ```

use crate::config::{CoreConfig, PersistenceMode};
use crate::ppa::csq::{Csq, CsqEntry};
use crate::ppa::mask::MaskReg;
use crate::prf::{PhysReg, Prf};
use crate::rename::RenameTable;
use ppa_isa::{RegClass, UopKind};
use std::collections::HashSet;
use std::fmt;

/// A deliberately injected bug, used by the mutation self-tests to prove
/// the checker catches real implementation errors. Faults are armed with
/// `Core::inject_fault` (available with the `verify` feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Commit a store without pinning its data register in MaskReg —
    /// breaks store integrity (§3.3): the register can be freed and
    /// recycled while the CSQ still references it.
    SkipMaskPin,
    /// Reclaim a redefined architectural mapping eagerly even when
    /// MaskReg has it pinned, instead of deferring to the region boundary.
    EagerFreeMasked,
    /// Commit a store without recording it in the CSQ — recovery would
    /// silently lose the store.
    SkipCsqEntry,
    /// Drop the deferred free list at region boundaries instead of
    /// returning it to the free list — a permanent physical-register leak.
    LeakDeferredFrees,
}

/// The invariant classes the built-in validators check. Every violation
/// names one of these, so a detection is machine-readable (the mutation
/// self-tests assert on the kind, not on message text).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// The same physical register appears twice in a free list.
    FreeListDuplicate,
    /// A register is simultaneously on the free list and allocated.
    FreeListAllocatedOverlap,
    /// The RAT maps an architectural register to a free physical register.
    RatDanglingMapping,
    /// Two architectural registers share one physical register in the RAT.
    RatDuplicateMapping,
    /// The CRT maps an architectural register to a free physical register.
    CrtDanglingMapping,
    /// Two architectural registers share one physical register in the CRT.
    CrtDuplicateMapping,
    /// A MaskReg-pinned register is not allocated (store integrity broken:
    /// the register could be recycled before its region persists).
    MaskedRegisterFree,
    /// A masked register is the destination of an in-flight micro-op — it
    /// reached the free list and was recycled, so the pending store data
    /// is being overwritten before its region persists.
    MaskedRegisterReallocated,
    /// A masked register is not the data source of any CSQ entry — the
    /// mask must be exactly the committed-store-source set (§4.4).
    MaskedNotStoreSource,
    /// A CSQ entry's data register is not masked — it could be freed
    /// before the region persists.
    CsqSourceUnmasked,
    /// A CSQ entry's data register is not allocated at all.
    CsqSourceFreed,
    /// A deferred-free register is not masked (only masked redefinitions
    /// may be deferred).
    DeferredFreeUnmasked,
    /// MaskReg or CSQ populated outside `PersistenceMode::Ppa`.
    PpaStateOutsidePpaMode,
    /// CSQ occupancy exceeds its configured capacity.
    CsqOverCapacity,
    /// A CSQ entry carries an invalid store size.
    CsqEntryInvalidSize,
    /// Entries already in the CSQ changed or reordered (the CSQ must be
    /// append-only within a region — commit order is replay order).
    CsqReordered,
    /// The CSQ lost entries without a region boundary.
    CsqShrankWithinRegion,
    /// CSQ occupancy disagrees with the number of stores committed in the
    /// current region.
    CsqStoreCountMismatch,
    /// ROB sequence numbers are not consecutive (age order broken).
    RobSequenceGap,
    /// An issue-queue entry references a micro-op that is not in the ROB
    /// or has already issued.
    IssueQueueOrphan,
    /// The load-queue pending count disagrees with the ROB's unissued
    /// loads.
    LoadQueueCountMismatch,
    /// The store-queue pending count disagrees with the ROB's uncommitted
    /// stores.
    StoreQueueCountMismatch,
    /// An allocated physical register is unreachable from any rename
    /// table, ROB entry, MaskReg bit, or deferred-free list — it leaked.
    PrfLeak,
    /// Advisory note: the CSQ-order validator's first observation found
    /// pre-existing CSQ entries (a recovered CSQ, or attachment to a
    /// core already mid-region). The validator trusts those entries as
    /// the recovery carry — their intra-region ordering predates
    /// attachment and was **not** validated, so a pre-existing reorder
    /// in them cannot be ruled out.
    AttachedMidRegion,
    /// Inter-core CSQ drain order broken (§6): the shared persist
    /// arbiter's grant log is not a total order consistent with its
    /// round-robin arbitration (non-monotone sequence numbers, more than
    /// one grant per cycle, or a core's region indices going backwards).
    CrossCoreDrainOrder,
    /// A region's drain was certified while stores of that region (or a
    /// region that never completed) were still in flight — a dependent
    /// store on another core could persist before the data it depends on
    /// (§6 cross-core persist ordering).
    PersistBeforeDependence,
    /// Two cores' recovery images claim the same word, so the cross-core
    /// replay order of that word is undefined and the recovered NVM image
    /// is incoherent. Under the DRF single-writer discipline every
    /// checkpointed word has exactly one owning core.
    RecoveryImageOverlap,
    /// The persist arbiter's grant port is not fair (§6): a certificate
    /// went to a core other than the round-robin-first pending requester
    /// (observed from the request lines recorded with each grant), or a
    /// pending core was starved past the rotation bound. A biased port
    /// turns the cross-core ordering cost from bounded to unbounded for
    /// the losing cores.
    ArbiterUnfair,
}

impl InvariantKind {
    /// Stable, kebab-case name for reports and CLIs.
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::FreeListDuplicate => "free-list-duplicate",
            InvariantKind::FreeListAllocatedOverlap => "free-list-allocated-overlap",
            InvariantKind::RatDanglingMapping => "rat-dangling-mapping",
            InvariantKind::RatDuplicateMapping => "rat-duplicate-mapping",
            InvariantKind::CrtDanglingMapping => "crt-dangling-mapping",
            InvariantKind::CrtDuplicateMapping => "crt-duplicate-mapping",
            InvariantKind::MaskedRegisterFree => "masked-register-free",
            InvariantKind::MaskedRegisterReallocated => "masked-register-reallocated",
            InvariantKind::MaskedNotStoreSource => "masked-not-store-source",
            InvariantKind::CsqSourceUnmasked => "csq-source-unmasked",
            InvariantKind::CsqSourceFreed => "csq-source-freed",
            InvariantKind::DeferredFreeUnmasked => "deferred-free-unmasked",
            InvariantKind::PpaStateOutsidePpaMode => "ppa-state-outside-ppa-mode",
            InvariantKind::CsqOverCapacity => "csq-over-capacity",
            InvariantKind::CsqEntryInvalidSize => "csq-entry-invalid-size",
            InvariantKind::CsqReordered => "csq-reordered",
            InvariantKind::CsqShrankWithinRegion => "csq-shrank-within-region",
            InvariantKind::CsqStoreCountMismatch => "csq-store-count-mismatch",
            InvariantKind::RobSequenceGap => "rob-sequence-gap",
            InvariantKind::IssueQueueOrphan => "issue-queue-orphan",
            InvariantKind::LoadQueueCountMismatch => "load-queue-count-mismatch",
            InvariantKind::StoreQueueCountMismatch => "store-queue-count-mismatch",
            InvariantKind::PrfLeak => "prf-leak",
            InvariantKind::AttachedMidRegion => "attached-mid-region",
            InvariantKind::CrossCoreDrainOrder => "cross-core-drain-order",
            InvariantKind::PersistBeforeDependence => "persist-before-dependence",
            InvariantKind::RecoveryImageOverlap => "recovery-image-overlap",
            InvariantKind::ArbiterUnfair => "arbiter-unfair",
        }
    }

    /// Whether this kind is an advisory note rather than a broken
    /// invariant. Advisories flag reduced checking coverage (e.g. a
    /// validator attached after execution began) — reports should show
    /// them, but they do not make a run unclean.
    pub fn is_advisory(self) -> bool {
        matches!(self, InvariantKind::AttachedMidRegion)
    }
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One detected invariant violation: which named invariant broke, which
/// validator saw it, where, and a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant that was broken.
    pub kind: InvariantKind,
    /// Name of the validator that reported it.
    pub check: &'static str,
    /// Cycle of the observation.
    pub cycle: u64,
    /// Core the violation occurred on.
    pub core: usize,
    /// Free-form context (register names, counts).
    pub detail: String,
}

impl Violation {
    /// Whether this is an advisory note ([`InvariantKind::is_advisory`]).
    pub fn is_advisory(&self) -> bool {
        self.kind.is_advisory()
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] core {} cycle {}: {} ({})",
            self.kind, self.core, self.cycle, self.detail, self.check
        )
    }
}

/// A snapshot of one in-flight ROB entry, as exposed to validators.
#[derive(Debug, Clone, Copy)]
pub struct RobSlot {
    /// Program-order sequence number.
    pub seq: u64,
    /// Micro-op kind.
    pub kind: UopKind,
    /// Destination physical register, if the op defines one.
    pub dst: Option<PhysReg>,
    /// The destination's previous mapping (freed or deferred at commit).
    pub prev: Option<PhysReg>,
    /// Renamed source registers.
    pub srcs: [Option<PhysReg>; 3],
    /// For stores: the physical register holding the data.
    pub store_data: Option<PhysReg>,
    /// Whether the op has issued.
    pub issued: bool,
}

/// Read-only view of a core's microarchitectural state, handed to each
/// [`Validator`] once per cycle. Constructed by `Core::verify_view`.
pub struct CoreView<'a> {
    /// Cycle of the snapshot.
    pub cycle: u64,
    pub(crate) cfg: &'a CoreConfig,
    pub(crate) id: usize,
    pub(crate) prf: &'a Prf,
    pub(crate) rat: &'a RenameTable,
    pub(crate) crt: &'a RenameTable,
    pub(crate) mask: &'a MaskReg,
    pub(crate) csq: &'a Csq,
    pub(crate) deferred: &'a [PhysReg],
    pub(crate) rob: Vec<RobSlot>,
    pub(crate) iq: &'a [u64],
    pub(crate) lq_pending: usize,
    pub(crate) sq_pending: usize,
    pub(crate) region_stores: u64,
    pub(crate) regions_completed: u64,
}

impl CoreView<'_> {
    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        self.cfg
    }

    /// The core's identifier.
    pub fn core_id(&self) -> usize {
        self.id
    }

    /// The physical register file.
    pub fn prf(&self) -> &Prf {
        self.prf
    }

    /// The speculative register alias table.
    pub fn rat(&self) -> &RenameTable {
        self.rat
    }

    /// The commit rename table.
    pub fn crt(&self) -> &RenameTable {
        self.crt
    }

    /// The store-operands mask register.
    pub fn mask(&self) -> &MaskReg {
        self.mask
    }

    /// The committed store queue.
    pub fn csq(&self) -> &Csq {
        self.csq
    }

    /// Registers awaiting reclamation at the next region boundary.
    pub fn deferred_frees(&self) -> &[PhysReg] {
        self.deferred
    }

    /// In-flight ROB entries, oldest first.
    pub fn rob(&self) -> &[RobSlot] {
        &self.rob
    }

    /// Sequence numbers of dispatched-but-unissued micro-ops.
    pub fn iq(&self) -> &[u64] {
        self.iq
    }

    /// Renamed loads that have not issued.
    pub fn lq_pending(&self) -> usize {
        self.lq_pending
    }

    /// Renamed stores/clwbs that have not committed.
    pub fn sq_pending(&self) -> usize {
        self.sq_pending
    }

    /// Stores committed in the current region.
    pub fn region_stores(&self) -> u64 {
        self.region_stores
    }

    /// Regions completed so far (changes exactly at region boundaries).
    pub fn regions_completed(&self) -> u64 {
        self.regions_completed
    }

    fn violation(&self, kind: InvariantKind, check: &'static str, detail: String) -> Violation {
        Violation {
            kind,
            check,
            cycle: self.cycle,
            core: self.id,
            detail,
        }
    }
}

/// A pluggable cycle-level check. Implementations may keep state between
/// cycles (e.g. the CSQ FIFO check snapshots the previous contents).
/// Per-validator cost accounting, kept by the core alongside each
/// attached validator: cycles checked and wall time spent inside
/// [`Validator::check`]. This is plain data (no telemetry dependency)
/// so `ppa-core` stays leaf-light; `ppa-verify` lifts it into metrics.
#[derive(Debug, Clone)]
pub struct ValidatorTiming {
    /// The validator's [`Validator::name`].
    pub name: &'static str,
    /// Cycles this validator has checked.
    pub cycles: u64,
    /// Wall time spent inside `check` across those cycles.
    pub elapsed: std::time::Duration,
}

impl ValidatorTiming {
    /// A zeroed accumulator for `name`.
    pub fn new(name: &'static str) -> Self {
        ValidatorTiming {
            name,
            cycles: 0,
            elapsed: std::time::Duration::ZERO,
        }
    }
}

pub trait Validator: fmt::Debug {
    /// Stable name, shown in reports.
    fn name(&self) -> &'static str;

    /// Inspects one cycle's state, appending any violations to `out`.
    fn check(&mut self, view: &CoreView<'_>, out: &mut Vec<Violation>);
}

/// Free-list integrity: no duplicates, no overlap with allocated state.
#[derive(Debug, Default)]
pub struct FreeListCheck;

impl Validator for FreeListCheck {
    fn name(&self) -> &'static str {
        "free-list"
    }

    fn check(&mut self, view: &CoreView<'_>, out: &mut Vec<Violation>) {
        for class in [RegClass::Int, RegClass::Fp] {
            let mut seen = HashSet::new();
            for reg in view.prf().free_regs(class) {
                if !seen.insert(reg) {
                    out.push(view.violation(
                        InvariantKind::FreeListDuplicate,
                        self.name(),
                        format!("{reg} appears twice in the free list"),
                    ));
                }
                if view.prf().is_allocated(reg) {
                    out.push(view.violation(
                        InvariantKind::FreeListAllocatedOverlap,
                        self.name(),
                        format!("{reg} is free-listed while allocated"),
                    ));
                }
            }
        }
    }
}

/// RAT/CRT consistency: mappings target allocated registers, and no
/// physical register backs two architectural ones.
#[derive(Debug, Default)]
pub struct RenameCheck;

impl Validator for RenameCheck {
    fn name(&self) -> &'static str {
        "rename"
    }

    fn check(&mut self, view: &CoreView<'_>, out: &mut Vec<Violation>) {
        let tables = [
            (
                view.rat(),
                "RAT",
                InvariantKind::RatDanglingMapping,
                InvariantKind::RatDuplicateMapping,
            ),
            (
                view.crt(),
                "CRT",
                InvariantKind::CrtDanglingMapping,
                InvariantKind::CrtDuplicateMapping,
            ),
        ];
        for (table, label, dangling, duplicate) in tables {
            let mut seen = HashSet::new();
            for (arch, phys) in table.iter() {
                if !view.prf().is_allocated(phys) {
                    out.push(view.violation(
                        dangling,
                        self.name(),
                        format!("{label} maps {arch} to free {phys}"),
                    ));
                }
                if !seen.insert(phys) {
                    out.push(view.violation(
                        duplicate,
                        self.name(),
                        format!("{phys} mapped twice in the {label}"),
                    ));
                }
            }
        }
    }
}

/// Store integrity (§3.3/§4.4): MaskReg is exactly the set of CSQ data
/// sources, every pinned register is allocated, and deferred frees are
/// pinned. Outside PPA mode, MaskReg and CSQ must stay empty.
#[derive(Debug, Default)]
pub struct MaskRegCheck;

impl Validator for MaskRegCheck {
    fn name(&self) -> &'static str {
        "maskreg"
    }

    fn check(&mut self, view: &CoreView<'_>, out: &mut Vec<Violation>) {
        if view.config().mode != PersistenceMode::Ppa {
            if !view.mask().is_empty() || !view.csq().is_empty() {
                out.push(view.violation(
                    InvariantKind::PpaStateOutsidePpaMode,
                    self.name(),
                    format!(
                        "mode {:?} has {} masked regs and {} CSQ entries",
                        view.config().mode,
                        view.mask().masked_count(),
                        view.csq().len()
                    ),
                ));
            }
            return;
        }
        let csq_sources: HashSet<PhysReg> = view.csq().iter().map(|e| e.src).collect();
        for slot in view.rob() {
            if let Some(dst) = slot.dst {
                if view.mask().is_masked(dst) {
                    out.push(view.violation(
                        InvariantKind::MaskedRegisterReallocated,
                        self.name(),
                        format!(
                            "masked {dst} recycled as the destination of seq {}",
                            slot.seq
                        ),
                    ));
                }
            }
        }
        for reg in view.mask().masked_regs() {
            if !view.prf().is_allocated(reg) {
                out.push(view.violation(
                    InvariantKind::MaskedRegisterFree,
                    self.name(),
                    format!("masked {reg} is on the free list"),
                ));
            }
            if !csq_sources.contains(&reg) {
                out.push(view.violation(
                    InvariantKind::MaskedNotStoreSource,
                    self.name(),
                    format!("masked {reg} feeds no CSQ entry"),
                ));
            }
        }
        for entry in view.csq().iter() {
            if !view.mask().is_masked(entry.src) {
                out.push(view.violation(
                    InvariantKind::CsqSourceUnmasked,
                    self.name(),
                    format!(
                        "CSQ entry @{:#x} source {} is unmasked",
                        entry.addr, entry.src
                    ),
                ));
            }
            if !view.prf().is_allocated(entry.src) {
                out.push(view.violation(
                    InvariantKind::CsqSourceFreed,
                    self.name(),
                    format!("CSQ entry @{:#x} source {} is freed", entry.addr, entry.src),
                ));
            }
        }
        for &reg in view.deferred_frees() {
            if !view.mask().is_masked(reg) {
                out.push(view.violation(
                    InvariantKind::DeferredFreeUnmasked,
                    self.name(),
                    format!("deferred free {reg} is not masked"),
                ));
            }
        }
    }
}

/// CSQ region ordering: occupancy within capacity, valid entry sizes,
/// append-only FIFO behaviour within a region, and agreement with the
/// region's committed-store count. Stateful — it compares each cycle's
/// contents with the previous cycle's.
#[derive(Debug, Default)]
pub struct CsqOrderCheck {
    snapshot: Vec<CsqEntry>,
    /// Value of the regions-completed counter at the last observation;
    /// a change means a boundary cleared the CSQ.
    last_regions: Option<u64>,
    /// Entries carried into the current region by recovery (the restored
    /// CSQ predates any store the resumed region commits).
    carried: usize,
}

impl Validator for CsqOrderCheck {
    fn name(&self) -> &'static str {
        "csq-order"
    }

    fn check(&mut self, view: &CoreView<'_>, out: &mut Vec<Violation>) {
        if view.config().mode != PersistenceMode::Ppa {
            return;
        }
        let csq = view.csq();
        if csq.len() > csq.capacity() {
            out.push(view.violation(
                InvariantKind::CsqOverCapacity,
                self.name(),
                format!("{} entries in a {}-entry CSQ", csq.len(), csq.capacity()),
            ));
        }
        for entry in csq.iter() {
            if !matches!(entry.size, 1 | 2 | 4 | 8) {
                out.push(view.violation(
                    InvariantKind::CsqEntryInvalidSize,
                    self.name(),
                    format!("entry @{:#x} has size {}", entry.addr, entry.size),
                ));
            }
        }

        let current: Vec<CsqEntry> = csq.iter().copied().collect();
        let same_region = self.last_regions == Some(view.regions_completed());
        if same_region {
            if current.len() < self.snapshot.len() {
                out.push(view.violation(
                    InvariantKind::CsqShrankWithinRegion,
                    self.name(),
                    format!(
                        "CSQ went from {} to {} entries with no boundary",
                        self.snapshot.len(),
                        current.len()
                    ),
                ));
            } else if current[..self.snapshot.len()] != self.snapshot[..] {
                out.push(view.violation(
                    InvariantKind::CsqReordered,
                    self.name(),
                    "existing CSQ entries changed; the queue must be append-only".to_string(),
                ));
            }
        } else {
            // A boundary cleared the queue, so anything present now was
            // appended by this region — except on the very first
            // observation, where entries may predate attachment (a
            // recovered CSQ, or a validator attached to a core already
            // mid-flight). Those entries are recorded explicitly as the
            // trusted carry and flagged with an advisory note: their
            // ordering was never observed, so this validator cannot rule
            // out a pre-existing reorder among them.
            if self.last_regions.is_none() {
                self.carried = current.len().saturating_sub(view.region_stores() as usize);
                if self.carried > 0 {
                    out.push(view.violation(
                        InvariantKind::AttachedMidRegion,
                        self.name(),
                        format!(
                            "first observation trusts {} pre-existing CSQ entries \
                             ({} present, {} committed this region); their ordering \
                             was not validated",
                            self.carried,
                            current.len(),
                            view.region_stores()
                        ),
                    ));
                }
            } else {
                self.carried = 0;
            }
            self.last_regions = Some(view.regions_completed());
        }
        let expected = self.carried + view.region_stores() as usize;
        if current.len() != expected {
            out.push(view.violation(
                InvariantKind::CsqStoreCountMismatch,
                self.name(),
                format!(
                    "{} CSQ entries but {} stores committed this region (+{} carried)",
                    current.len(),
                    view.region_stores(),
                    self.carried
                ),
            ));
        }
        self.snapshot = current;
    }
}

/// ROB/LSQ age consistency: sequence numbers are consecutive (commit
/// order is age order), issue-queue entries reference live unissued ops,
/// and the load/store-queue pending counters match the ROB's contents.
#[derive(Debug, Default)]
pub struct RobAgeCheck;

impl Validator for RobAgeCheck {
    fn name(&self) -> &'static str {
        "rob-age"
    }

    fn check(&mut self, view: &CoreView<'_>, out: &mut Vec<Violation>) {
        let rob = view.rob();
        for pair in rob.windows(2) {
            if pair[1].seq != pair[0].seq + 1 {
                out.push(view.violation(
                    InvariantKind::RobSequenceGap,
                    self.name(),
                    format!("seq {} followed by {}", pair[0].seq, pair[1].seq),
                ));
            }
        }
        let front = rob.first().map(|e| e.seq);
        for &seq in view.iq() {
            let slot = front
                .filter(|&f| seq >= f)
                .and_then(|f| rob.get((seq - f) as usize));
            match slot {
                Some(s) if !s.issued => {}
                _ => out.push(view.violation(
                    InvariantKind::IssueQueueOrphan,
                    self.name(),
                    format!("IQ references seq {seq} which is absent or already issued"),
                )),
            }
        }
        let unissued_loads = rob
            .iter()
            .filter(|e| e.kind.needs_lq_entry() && !e.issued)
            .count();
        if unissued_loads != view.lq_pending() {
            out.push(view.violation(
                InvariantKind::LoadQueueCountMismatch,
                self.name(),
                format!(
                    "lq_pending {} but {} unissued loads in the ROB",
                    view.lq_pending(),
                    unissued_loads
                ),
            ));
        }
        let pending_stores = rob.iter().filter(|e| e.kind.needs_sq_entry()).count();
        if pending_stores != view.sq_pending() {
            out.push(view.violation(
                InvariantKind::StoreQueueCountMismatch,
                self.name(),
                format!(
                    "sq_pending {} but {} uncommitted stores/clwbs in the ROB",
                    view.sq_pending(),
                    pending_stores
                ),
            ));
        }
    }
}

/// PRF leak / double-free detection: every allocated register must be
/// reachable from the RAT, the CRT, an in-flight ROB entry, MaskReg, or
/// the deferred-free list. (The double-free direction is covered by
/// [`FreeListCheck`]'s overlap detection.)
#[derive(Debug, Default)]
pub struct PrfLeakCheck;

impl Validator for PrfLeakCheck {
    fn name(&self) -> &'static str {
        "prf-leak"
    }

    fn check(&mut self, view: &CoreView<'_>, out: &mut Vec<Violation>) {
        let mut reachable: HashSet<PhysReg> = HashSet::new();
        reachable.extend(view.rat().iter().map(|(_, p)| p));
        reachable.extend(view.crt().iter().map(|(_, p)| p));
        reachable.extend(view.mask().masked_regs());
        reachable.extend(view.deferred_frees().iter().copied());
        for slot in view.rob() {
            reachable.extend(slot.dst);
            reachable.extend(slot.prev);
            reachable.extend(slot.store_data);
            reachable.extend(slot.srcs.iter().flatten());
        }
        for class in [RegClass::Int, RegClass::Fp] {
            for reg in view.prf().regs(class) {
                if view.prf().is_allocated(reg) && !reachable.contains(&reg) {
                    out.push(view.violation(
                        InvariantKind::PrfLeak,
                        self.name(),
                        format!("{reg} is allocated but unreachable"),
                    ));
                }
            }
        }
    }
}

/// The full built-in validator suite.
pub fn default_validators() -> Vec<Box<dyn Validator>> {
    vec![
        Box::new(FreeListCheck),
        Box::new(RenameCheck),
        Box::new(MaskRegCheck),
        Box::new(CsqOrderCheck::default()),
        Box::new(RobAgeCheck),
        Box::new(PrfLeakCheck),
    ]
}

/// Runs the stateless checks once over a snapshot. This is what the
/// debug-build region-boundary assertion in the pipeline uses — the old
/// ad-hoc asserts, expressed as named invariants.
pub fn check_snapshot(view: &CoreView<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    FreeListCheck.check(view, &mut out);
    RenameCheck.check(view, &mut out);
    MaskRegCheck.check(view, &mut out);
    RobAgeCheck.check(view, &mut out);
    PrfLeakCheck.check(view, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, PersistenceMode};
    use crate::pipeline::Core;
    use ppa_isa::{ArchReg, TraceBuilder};
    use ppa_mem::{MemConfig, MemorySystem};

    fn run_clean_core() -> (Core, MemorySystem) {
        let mut b = TraceBuilder::new("t");
        for i in 0..40u64 {
            let r = ArchReg::int((i % 6) as u8);
            b.alu(r, &[r]);
            b.store(r, 0x1000 + i * 8, i + 1);
        }
        let trace = b.build();
        let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
        let mut core = Core::new(CoreConfig::paper_default(PersistenceMode::Ppa), 0);
        for now in 0..300 {
            core.step(&trace, &mut mem, now);
            mem.tick(now);
        }
        (core, mem)
    }

    #[test]
    fn clean_execution_passes_all_snapshot_checks() {
        let (core, _mem) = run_clean_core();
        let view = core.verify_view(300);
        let violations = check_snapshot(&view);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation {
            kind: InvariantKind::PrfLeak,
            check: "prf-leak",
            cycle: 7,
            core: 1,
            detail: "pi5 is allocated but unreachable".into(),
        };
        let s = v.to_string();
        assert!(s.contains("prf-leak"));
        assert!(s.contains("cycle 7"));
        assert!(s.contains("pi5"));
    }

    #[test]
    fn kinds_have_unique_names() {
        let kinds = [
            InvariantKind::FreeListDuplicate,
            InvariantKind::FreeListAllocatedOverlap,
            InvariantKind::RatDanglingMapping,
            InvariantKind::RatDuplicateMapping,
            InvariantKind::CrtDanglingMapping,
            InvariantKind::CrtDuplicateMapping,
            InvariantKind::MaskedRegisterFree,
            InvariantKind::MaskedRegisterReallocated,
            InvariantKind::MaskedNotStoreSource,
            InvariantKind::CsqSourceUnmasked,
            InvariantKind::CsqSourceFreed,
            InvariantKind::DeferredFreeUnmasked,
            InvariantKind::PpaStateOutsidePpaMode,
            InvariantKind::CsqOverCapacity,
            InvariantKind::CsqEntryInvalidSize,
            InvariantKind::CsqReordered,
            InvariantKind::CsqShrankWithinRegion,
            InvariantKind::CsqStoreCountMismatch,
            InvariantKind::RobSequenceGap,
            InvariantKind::IssueQueueOrphan,
            InvariantKind::LoadQueueCountMismatch,
            InvariantKind::StoreQueueCountMismatch,
            InvariantKind::PrfLeak,
            InvariantKind::AttachedMidRegion,
            InvariantKind::CrossCoreDrainOrder,
            InvariantKind::PersistBeforeDependence,
            InvariantKind::RecoveryImageOverlap,
        ];
        let names: HashSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn only_the_mid_region_note_is_advisory() {
        assert!(InvariantKind::AttachedMidRegion.is_advisory());
        assert!(!InvariantKind::CsqStoreCountMismatch.is_advisory());
        assert!(!InvariantKind::CsqReordered.is_advisory());
    }

    /// A validator attached after execution began (here: to a recovered
    /// core whose restored CSQ predates attachment) must record the
    /// trusted carry explicitly via an `AttachedMidRegion` note instead
    /// of silently trusting it — and must not report the carried entries
    /// as a store-count mismatch.
    #[test]
    fn late_attachment_emits_the_mid_region_note_once() {
        let mut b = TraceBuilder::new("late-attach");
        for i in 0..200u64 {
            let r = ArchReg::int((i % 6) as u8);
            b.alu(r, &[r]);
            b.store(r, 0x1000 + (i % 32) * 8, i + 1);
        }
        let trace = b.build();
        let cfg = CoreConfig::paper_default(PersistenceMode::Ppa);
        let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
        let mut core = Core::new(cfg, 0);
        let mut now = 0;
        while core.csq_len() == 0 {
            core.step(&trace, &mut mem, now);
            mem.tick(now);
            now += 1;
            assert!(now < 100_000, "CSQ never filled");
        }
        let image = core.jit_checkpoint();
        let recovered = Core::recover(cfg, 0, &image);

        let mut check = CsqOrderCheck::default();
        let mut out = Vec::new();
        check.check(&recovered.verify_view(now), &mut out);
        assert!(
            out.iter()
                .any(|v| v.kind == InvariantKind::AttachedMidRegion),
            "first observation of a restored CSQ must be flagged: {out:?}"
        );
        assert!(
            out.iter()
                .all(|v| v.kind != InvariantKind::CsqStoreCountMismatch),
            "the recorded carry must not be misread as a count mismatch: {out:?}"
        );

        // The note fires once; later observations of the same state are
        // clean.
        let mut again = Vec::new();
        check.check(&recovered.verify_view(now + 1), &mut again);
        assert_eq!(again, vec![]);
    }

    /// Fresh cores (the only attach-at-cycle-zero use) see an empty CSQ
    /// first, so no advisory fires.
    #[test]
    fn fresh_core_attachment_emits_no_note() {
        let core = Core::new(CoreConfig::paper_default(PersistenceMode::Ppa), 0);
        let mut check = CsqOrderCheck::default();
        let mut out = Vec::new();
        check.check(&core.verify_view(0), &mut out);
        assert_eq!(out, vec![]);
    }
}
