use crate::prf::PhysReg;
use crate::stats::RegionEndCause;
use ppa_isa::UopKind;

/// One observable pipeline event, in the vocabulary of the paper's
/// Figure 2/Figure 6 walkthroughs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineEvent {
    /// An instruction committed (LCPC advanced to `pc`).
    Commit {
        /// Cycle of the commit.
        cycle: u64,
        /// Program counter of the committed micro-op.
        pc: u64,
        /// Kind of the committed micro-op.
        kind: UopKind,
    },
    /// A committed store entered the CSQ and its data register was masked.
    StoreTracked {
        /// Cycle of the commit.
        cycle: u64,
        /// Destination physical address.
        addr: u64,
        /// Physical register holding the stored value (now masked).
        data_reg: PhysReg,
        /// CSQ occupancy after the insertion.
        csq_occupancy: usize,
    },
    /// Renaming found the free list empty and injected a persist barrier
    /// (§4.2's region boundary trigger).
    BarrierInjected {
        /// Cycle of the stall.
        cycle: u64,
    },
    /// A region ended: masked registers reclaimed, MaskReg and CSQ
    /// cleared.
    RegionEnd {
        /// Cycle of the boundary.
        cycle: u64,
        /// Why the region ended.
        cause: RegionEndCause,
        /// Instructions committed in the region.
        insts: u64,
        /// Stores committed in the region.
        stores: u64,
        /// Physical registers reclaimed from the deferred-free list.
        reclaimed: usize,
    },
}

impl PipelineEvent {
    /// The cycle the event occurred at.
    pub fn cycle(&self) -> u64 {
        match *self {
            PipelineEvent::Commit { cycle, .. }
            | PipelineEvent::StoreTracked { cycle, .. }
            | PipelineEvent::BarrierInjected { cycle }
            | PipelineEvent::RegionEnd { cycle, .. } => cycle,
        }
    }
}

/// A bounded, allocation-friendly log of [`PipelineEvent`]s.
///
/// Recording stops silently once `capacity` events have been captured, so
/// enabling the log on a long run costs bounded memory. Intended for
/// debugging, teaching (see `examples/pipeline_trace.rs`), and tests that
/// assert on the *sequence* of microarchitectural actions rather than on
/// aggregate statistics.
///
/// # Examples
///
/// ```
/// use ppa_core::{EventLog, PipelineEvent};
///
/// let mut log = EventLog::with_capacity(2);
/// log.push(PipelineEvent::BarrierInjected { cycle: 1 });
/// log.push(PipelineEvent::BarrierInjected { cycle: 2 });
/// log.push(PipelineEvent::BarrierInjected { cycle: 3 }); // dropped
/// assert_eq!(log.events().len(), 2);
/// assert!(log.truncated());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<PipelineEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// Creates a log that keeps at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, dropping it silently when full.
    pub fn push(&mut self, ev: PipelineEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The captured events, in order.
    pub fn events(&self) -> &[PipelineEvent] {
        &self.events
    }

    /// Whether events were dropped after the capacity filled.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Number of events dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_recording() {
        let mut log = EventLog::with_capacity(3);
        for c in 0..10 {
            log.push(PipelineEvent::Commit {
                cycle: c,
                pc: c * 4,
                kind: UopKind::Nop,
            });
        }
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.dropped(), 7);
        assert!(log.truncated());
    }

    #[test]
    fn events_keep_arrival_order() {
        let mut log = EventLog::with_capacity(8);
        log.push(PipelineEvent::BarrierInjected { cycle: 5 });
        log.push(PipelineEvent::RegionEnd {
            cycle: 9,
            cause: RegionEndCause::PrfExhausted,
            insts: 100,
            stores: 4,
            reclaimed: 3,
        });
        assert_eq!(log.events()[0].cycle(), 5);
        assert_eq!(log.events()[1].cycle(), 9);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut log = EventLog::with_capacity(0);
        log.push(PipelineEvent::BarrierInjected { cycle: 0 });
        assert!(log.events().is_empty());
        assert!(log.truncated());
    }
}
