use crate::config::CoreConfig;
use ppa_stats::{Cdf, Summary};

/// Why a PPA region ended — used by ablation studies and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionEndCause {
    /// The free list ran out at the rename stage (§4.2, the common case).
    PrfExhausted,
    /// The CSQ filled up (§4.2, "Full CSQ as an Implicit Region Boundary").
    CsqFull,
    /// A synchronisation primitive committed (§6).
    Sync,
    /// End of the program (the final region drains before exit).
    ProgramEnd,
    /// A statically forced boundary (ablation of dynamic formation).
    Forced,
}

/// Per-core execution statistics, covering every quantity the paper's
/// evaluation section reports about the core.
#[derive(Debug, Clone)]
pub struct CoreStats {
    /// Cycles executed.
    pub cycles: u64,
    /// Micro-ops committed.
    pub committed_uops: u64,
    /// Stores committed.
    pub committed_stores: u64,
    /// Regions completed (PPA).
    pub regions: u64,
    /// Instructions per region (Figure 13).
    pub region_insts: Summary,
    /// Stores per region (Figure 13).
    pub region_stores: Summary,
    /// Cycles stalled at region ends waiting for store persistence
    /// (Figure 11).
    pub region_end_stall_cycles: u64,
    /// Cycles the rename stage was blocked because the free list was empty
    /// (Figure 12).
    pub rename_noreg_stall_cycles: u64,
    /// Cycles the rename stage made no progress for any structural reason.
    pub rename_stall_cycles: u64,
    /// Cycles rename was blocked on a full store queue (ReplayCache's
    /// `clwb` pressure shows up here).
    pub sq_full_stall_cycles: u64,
    /// Region boundaries forced by a full CSQ (Figure 17).
    pub csq_full_boundaries: u64,
    /// Region boundaries per cause.
    pub region_ends_prf: u64,
    /// Region boundaries caused by synchronisation primitives.
    pub region_ends_sync: u64,
    /// Statically forced region boundaries (ablation runs only).
    pub region_ends_forced: u64,
    /// Cycles software persist barriers (ReplayCache/Capri) stalled commit.
    pub barrier_commit_stall_cycles: u64,
    /// CDF of free integer physical registers, sampled every cycle at the
    /// rename stage (Figure 5a).
    pub free_int_cdf: Cdf,
    /// CDF of free floating-point physical registers (Figure 5b).
    pub free_fp_cdf: Cdf,
}

impl CoreStats {
    /// Creates zeroed statistics sized to the core's PRF.
    pub fn new(cfg: &CoreConfig) -> Self {
        CoreStats {
            cycles: 0,
            committed_uops: 0,
            committed_stores: 0,
            regions: 0,
            region_insts: Summary::new(),
            region_stores: Summary::new(),
            region_end_stall_cycles: 0,
            rename_noreg_stall_cycles: 0,
            rename_stall_cycles: 0,
            sq_full_stall_cycles: 0,
            csq_full_boundaries: 0,
            region_ends_prf: 0,
            region_ends_sync: 0,
            region_ends_forced: 0,
            barrier_commit_stall_cycles: 0,
            free_int_cdf: Cdf::with_max_value(cfg.int_prf as u64),
            free_fp_cdf: Cdf::with_max_value(cfg.fp_prf as u64),
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_uops as f64 / self.cycles as f64
        }
    }

    /// Fraction of execution cycles spent stalled at region ends
    /// (Figure 11's metric).
    pub fn region_end_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.region_end_stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles the rename stage was out of physical registers
    /// (Figure 12's metric).
    pub fn rename_noreg_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rename_noreg_stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Records a completed region.
    pub fn record_region(&mut self, insts: u64, stores: u64, cause: RegionEndCause) {
        self.regions += 1;
        self.region_insts.record(insts as f64);
        self.region_stores.record(stores as f64);
        match cause {
            RegionEndCause::PrfExhausted => self.region_ends_prf += 1,
            RegionEndCause::CsqFull => self.csq_full_boundaries += 1,
            RegionEndCause::Sync => self.region_ends_sync += 1,
            RegionEndCause::Forced => self.region_ends_forced += 1,
            RegionEndCause::ProgramEnd => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, PersistenceMode};

    fn stats() -> CoreStats {
        CoreStats::new(&CoreConfig::paper_default(PersistenceMode::Ppa))
    }

    #[test]
    fn fresh_stats_are_zero() {
        let s = stats();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.region_end_stall_fraction(), 0.0);
        assert_eq!(s.rename_noreg_stall_fraction(), 0.0);
    }

    #[test]
    fn ipc_is_uops_over_cycles() {
        let mut s = stats();
        s.cycles = 100;
        s.committed_uops = 250;
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn record_region_tracks_cause_counters() {
        let mut s = stats();
        s.record_region(300, 18, RegionEndCause::PrfExhausted);
        s.record_region(10, 10, RegionEndCause::CsqFull);
        s.record_region(50, 2, RegionEndCause::Sync);
        s.record_region(5, 0, RegionEndCause::ProgramEnd);
        assert_eq!(s.regions, 4);
        assert_eq!(s.region_ends_prf, 1);
        assert_eq!(s.csq_full_boundaries, 1);
        assert_eq!(s.region_ends_sync, 1);
        assert!((s.region_insts.mean() - 91.25).abs() < 1e-9);
    }

    #[test]
    fn cdfs_sized_to_prf() {
        let s = stats();
        assert_eq!(s.free_int_cdf.max_value(), 180);
        assert_eq!(s.free_fp_cdf.max_value(), 168);
    }
}
