use crate::prf::PhysReg;
use ppa_isa::ArchReg;

/// A map from architectural to physical registers — used for both the
/// register alias table (RAT, speculative/in-flight state) and the commit
/// rename table (CRT, architectural state), per §2.1.
///
/// # Examples
///
/// ```
/// use ppa_core::{PhysReg, RenameTable};
/// use ppa_isa::{ArchReg, RegClass};
///
/// let mut rat = RenameTable::new();
/// let r0 = ArchReg::int(0);
/// let p0 = PhysReg::new(RegClass::Int, 0);
/// let old = rat.set(r0, p0);
/// assert_eq!(old, None);
/// assert_eq!(rat.get(r0), Some(p0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameTable {
    map: Vec<Option<PhysReg>>,
}

impl RenameTable {
    /// Creates a table with no mappings.
    pub fn new() -> Self {
        RenameTable {
            map: vec![None; ArchReg::flat_count()],
        }
    }

    /// The current mapping of `reg`, if any.
    pub fn get(&self, reg: ArchReg) -> Option<PhysReg> {
        self.map[reg.flat_index()]
    }

    /// Maps `reg` to `phys`, returning the previous mapping. The previous
    /// mapping is what conventional renaming frees when the redefining
    /// instruction commits — and what PPA *defers* freeing when MaskReg has
    /// it masked.
    pub fn set(&mut self, reg: ArchReg, phys: PhysReg) -> Option<PhysReg> {
        self.map[reg.flat_index()].replace(phys)
    }

    /// Iterator over current `(arch, phys)` mappings.
    pub fn iter(&self) -> impl Iterator<Item = (ArchReg, PhysReg)> + '_ {
        ArchReg::all().filter_map(move |a| self.map[a.flat_index()].map(|p| (a, p)))
    }

    /// Whether `phys` is some architectural register's current mapping.
    pub fn maps_to(&self, phys: PhysReg) -> bool {
        self.map.contains(&Some(phys))
    }

    /// Number of established mappings.
    pub fn len(&self) -> usize {
        self.map.iter().filter(|m| m.is_some()).count()
    }

    /// Whether the table has no mappings.
    pub fn is_empty(&self) -> bool {
        self.map.iter().all(Option::is_none)
    }

    /// Replaces this table's contents with another's — how recovery
    /// "populates RAT with the restored CRT" (§4, step 3).
    pub fn copy_from(&mut self, other: &RenameTable) {
        self.map.copy_from_slice(&other.map);
    }
}

impl Default for RenameTable {
    fn default() -> Self {
        RenameTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_isa::RegClass;

    fn p(i: u16) -> PhysReg {
        PhysReg::new(RegClass::Int, i)
    }

    #[test]
    fn set_returns_previous_mapping() {
        let mut t = RenameTable::new();
        let r = ArchReg::int(3);
        assert_eq!(t.set(r, p(1)), None);
        assert_eq!(t.set(r, p(2)), Some(p(1)));
        assert_eq!(t.get(r), Some(p(2)));
    }

    #[test]
    fn int_and_fp_do_not_collide() {
        let mut t = RenameTable::new();
        t.set(ArchReg::int(0), p(1));
        t.set(ArchReg::fp(0), PhysReg::new(RegClass::Fp, 1));
        assert_eq!(t.get(ArchReg::int(0)), Some(p(1)));
        assert_eq!(t.get(ArchReg::fp(0)), Some(PhysReg::new(RegClass::Fp, 1)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn maps_to_finds_current_mappings_only() {
        let mut t = RenameTable::new();
        t.set(ArchReg::int(0), p(1));
        t.set(ArchReg::int(0), p(2));
        assert!(!t.maps_to(p(1)), "stale mapping must not be reported");
        assert!(t.maps_to(p(2)));
    }

    #[test]
    fn copy_from_clones_contents() {
        let mut a = RenameTable::new();
        a.set(ArchReg::int(5), p(7));
        let mut b = RenameTable::new();
        b.copy_from(&a);
        assert_eq!(b.get(ArchReg::int(5)), Some(p(7)));
    }

    #[test]
    fn iter_covers_all_mappings() {
        let mut t = RenameTable::new();
        assert!(t.is_empty());
        t.set(ArchReg::int(1), p(1));
        t.set(ArchReg::fp(2), PhysReg::new(RegClass::Fp, 3));
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs.len(), 2);
    }
}
