//! `ppa-grid` — the standalone grid front-end.
//!
//! ```text
//! # host A: run the persistent service daemon (the default mode)
//! ppa-grid serve --listen 0.0.0.0:7171 --checkpoint /var/tmp/ppa.ppsc
//!
//! # hosts B, C: execute work units until the daemon stops
//! ppa-grid work --connect hostA:7171 --jobs 8
//!
//! # one-shot: render a selection across workers, then exit
//! ppa-grid serve --oneshot --listen 0.0.0.0:7171 --min-workers 2 all
//!
//! # single host: loopback self-test of the whole stack
//! ppa-grid selftest --workers 3
//! ```
//!
//! `serve` without experiments runs the `ppa-serve` daemon: a
//! long-lived coordinator with a content-addressed result cache that
//! any number of `repro --grid serve:...`, `ppa-verify oracle --grid
//! serve:...`, and `ppa-litmus run --grid serve:...` clients submit
//! to concurrently. With `--oneshot` (plus experiment ids) it renders
//! the selection exactly like `repro` does — stdout byte-identical to
//! a local run — and exits. `work` executes the benchmark (`repro.*`),
//! oracle (`oracle.*`), and litmus (`litmus.*`) unit vocabularies, so
//! one worker process serves every client alike. `selftest` runs a
//! loopback grid — including an injected mid-lease worker death — and
//! checks the transported results byte-for-byte against local
//! execution.

use ppa_bench::{experiments, gridwork};
use ppa_grid::coord::{Coordinator, GridConfig};
use ppa_grid::loopback;
use ppa_grid::worker::{run_worker, Executor, WorkerOptions};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Routes both harnesses' unit vocabularies to their dispatchers.
struct CombinedExecutor;

impl Executor for CombinedExecutor {
    fn execute(&self, tag: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        if tag.starts_with("repro.") {
            gridwork::execute(tag, payload)
        } else if tag.starts_with("oracle.") {
            ppa_verify::grid::execute(tag, payload)
        } else if tag.starts_with("litmus.") {
            ppa_litmus::gridwork::execute(tag, payload)
        } else {
            Err(format!("unknown unit tag '{tag}'"))
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: ppa-grid <serve|work|selftest> [options]");
    eprintln!();
    eprintln!("  serve --listen HOST:PORT [--checkpoint FILE]");
    eprintln!("        [--checkpoint-interval SECS] [--metrics-json FILE]");
    eprintln!("        [--port-file FILE]");
    eprintln!("      run the persistent service daemon (default mode): workers");
    eprintln!("      and any number of repro/ppa-verify/ppa-litmus clients share");
    eprintln!("      the port; results are served from the content-addressed");
    eprintln!("      cache when available, and with --checkpoint the queue and");
    eprintln!("      cache survive restarts (see also `ppa-serve`)");
    eprintln!();
    eprintln!("  serve --oneshot --listen HOST:PORT [--min-workers N]");
    eprintln!("        [--metrics-json FILE] <experiment>...|all");
    eprintln!("      bind a coordinator, wait for N workers (default 1), render");
    eprintln!("      the selected experiments across them (stdout is");
    eprintln!("      byte-identical to a local `repro` run), then exit");
    eprintln!();
    eprintln!("  work --connect HOST:PORT [--jobs N]");
    eprintln!("      execute work units for a coordinator until it shuts down;");
    eprintln!("      N concurrent units (default: PPA_JOBS, else 1; 0 = auto)");
    eprintln!();
    eprintln!("  selftest [--workers N] [--jobs N]");
    eprintln!("      loopback smoke test: distribute representative benchmark");
    eprintln!("      and oracle units over N in-process workers (default 2),");
    eprintln!("      kill one mid-lease, and diff every result against local");
    eprintln!("      execution");
    eprintln!();
    eprintln!("  verbosity: -q (errors only), -v (info), -vv (debug);");
    eprintln!("      default prints warnings only. PPA_LOG=LEVEL is equivalent");
    eprintln!("      (the flag wins).");
    std::process::exit(2)
}

/// Consumes a `-q`/`-v`/`-vv` verbosity flag if `a` is one.
fn verbosity_flag(a: &str) -> bool {
    let level = match a {
        "-q" | "--quiet" => ppa_obs::Level::Error,
        "-v" | "--verbose" => ppa_obs::Level::Info,
        "-vv" => ppa_obs::Level::Debug,
        _ => return false,
    };
    ppa_obs::log::set_level(level);
    true
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut listen: Option<String> = None;
    let mut min_workers = 1usize;
    let mut oneshot = false;
    let mut metrics_json: Option<std::path::PathBuf> = None;
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut checkpoint_interval: Option<Duration> = None;
    let mut port_file: Option<std::path::PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => listen = it.next().cloned(),
            "--oneshot" => oneshot = true,
            "--min-workers" => {
                min_workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--jobs" => ppa_pool::set_jobs(
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage()),
            ),
            "--metrics-json" => {
                metrics_json = Some(std::path::PathBuf::from(
                    it.next().cloned().unwrap_or_else(|| usage()),
                ))
            }
            "--checkpoint" => {
                checkpoint = Some(std::path::PathBuf::from(
                    it.next().cloned().unwrap_or_else(|| usage()),
                ))
            }
            "--checkpoint-interval" => {
                let secs: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                checkpoint_interval = Some(Duration::from_secs(secs.max(1)));
            }
            "--port-file" => {
                port_file = Some(std::path::PathBuf::from(
                    it.next().cloned().unwrap_or_else(|| usage()),
                ))
            }
            a if verbosity_flag(a) => {}
            _ => ids.push(a.clone()),
        }
    }
    let listen = listen.unwrap_or_else(|| usage());
    if !oneshot {
        // Daemon is the default serve mode; experiment ids only make
        // sense for the one-shot render path.
        if !ids.is_empty() {
            eprintln!("ppa-grid: experiment arguments require --oneshot");
            return ExitCode::FAILURE;
        }
        let mut opts = ppa_serve::DaemonOptions {
            addr: listen,
            checkpoint,
            metrics_json,
            ..Default::default()
        };
        if let Some(interval) = checkpoint_interval {
            opts.checkpoint_interval = interval;
        }
        let daemon = match ppa_serve::Daemon::start(opts) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("ppa-grid: {e}");
                return ExitCode::FAILURE;
            }
        };
        let addr = daemon.local_addr();
        ppa_obs::info!("grid", "serve daemon listening on {addr}");
        if let Some(path) = &port_file {
            let write = || -> std::io::Result<()> {
                use std::io::Write;
                let mut f = std::fs::File::create(path)?;
                writeln!(f, "{addr}")
            };
            if let Err(e) = write() {
                eprintln!("ppa-grid: failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        daemon.run();
        ppa_obs::info!("grid", "serve daemon stopped");
        return ExitCode::SUCCESS;
    }
    if ids.is_empty() {
        usage();
    }
    let registry = experiments::all_experiments();
    let selected: Vec<(&'static str, experiments::Experiment)> = if ids.iter().any(|i| i == "all") {
        registry
    } else {
        ids.iter()
            .map(|id| {
                registry
                    .iter()
                    .find(|(n, _)| n == id)
                    .copied()
                    .unwrap_or_else(|| {
                        eprintln!("ppa-grid: unknown experiment '{id}'");
                        std::process::exit(2);
                    })
            })
            .collect()
    };

    let coord = match Coordinator::bind(listen.as_str(), GridConfig::default()) {
        Ok(c) => Arc::new(c),
        Err(e) => {
            eprintln!("ppa-grid: failed to bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    ppa_obs::info!(
        "grid",
        "listening on {}; waiting for {min_workers} worker(s)...",
        coord.local_addr()
    );
    if !coord.wait_for_workers(min_workers, Duration::from_secs(600)) {
        eprintln!("ppa-grid: {min_workers} worker(s) did not connect within 600s");
        return ExitCode::FAILURE;
    }
    ppa_obs::info!("grid", "{} worker(s) connected", coord.live_workers());
    gridwork::install(gridwork::GridHandle::Serve(Arc::clone(&coord)));

    let render =
        || ppa_pool::par_map_ordered(selected, |(id, f)| (id, gridwork::render_experiment(id, f)));
    let rendered = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(render)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("experiment panicked");
            eprintln!("ppa-grid: {msg}");
            coord.shutdown();
            return ExitCode::FAILURE;
        }
    };
    for (id, table) in rendered {
        println!("=== {id} ===");
        println!("{table}");
    }
    let s = coord.stats();
    ppa_obs::info!(
        "grid",
        "dispatched={} completed={} redispatched={} duplicates={} unit_errors={} workers_joined={} workers_lost={}",
        s.dispatched, s.completed, s.redispatched, s.duplicates, s.unit_errors, s.workers_joined, s.workers_lost
    );
    coord.shutdown();
    if let Some(path) = &metrics_json {
        ppa_pool::export_metrics();
        if let Err(e) = ppa_obs::snapshot().write_json_file(path, false) {
            eprintln!("ppa-grid: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_work(args: &[String]) -> ExitCode {
    let mut connect: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = it.next().cloned(),
            "--jobs" => ppa_pool::set_jobs(
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage()),
            ),
            a if verbosity_flag(a) => {}
            _ => usage(),
        }
    }
    let connect = connect.unwrap_or_else(|| usage());
    let jobs = ppa_pool::configured_jobs();
    ppa_obs::info!("grid", "connecting to {connect} with {jobs} job slot(s)");
    match run_worker(
        connect.as_str(),
        WorkerOptions {
            jobs,
            ..WorkerOptions::default()
        },
        Arc::new(CombinedExecutor),
    ) {
        Ok(report) => {
            ppa_obs::info!("grid", "done; executed {} unit(s)", report.executed);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ppa-grid: worker failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_selftest(args: &[String]) -> ExitCode {
    let mut workers = 2usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--jobs" => ppa_pool::set_jobs(
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage()),
            ),
            a if verbosity_flag(a) => {}
            _ => usage(),
        }
    }
    let workers = workers.max(2); // one dies; at least one must survive

    // Representative traffic: every fig11 app cell (one per workload)
    // plus a small oracle plan/cell batch, at trace lengths that keep
    // the self-test in the seconds range.
    let mut units = gridwork::units_for("fig11", 4_000).expect("fig11 decomposes");
    units.extend(ppa_verify::grid::selftest_units());
    units.extend(ppa_litmus::gridwork::selftest_units());
    let expected: Vec<Vec<u8>> = units
        .iter()
        .map(|u| {
            CombinedExecutor
                .execute(&u.tag, &u.payload)
                .expect("selftest units execute locally")
        })
        .collect();

    // Worker 0 drops its connection mid-lease after a few units; the
    // coordinator must re-dispatch its outstanding leases to survivors.
    let mut opts = vec![WorkerOptions {
        die_after: Some(3),
        ..WorkerOptions::default()
    }];
    opts.extend(vec![WorkerOptions::default(); workers - 1]);
    let exec: Arc<dyn Executor> = Arc::new(CombinedExecutor);
    let lb = match loopback::start(opts, exec, GridConfig::default()) {
        Ok(lb) => lb,
        Err(e) => {
            eprintln!("ppa-grid: selftest failed to start loopback grid: {e}");
            return ExitCode::FAILURE;
        }
    };
    ppa_obs::info!(
        "grid",
        "selftest with {workers} loopback workers on {} ({} units, worker 0 dies mid-lease)",
        lb.coordinator().local_addr(),
        units.len()
    );
    let results = lb.run_units(units.clone());
    let stats = lb.coordinator().stats();
    let reports = lb.shutdown();

    let mut ok = true;
    for ((unit, exp), res) in units.iter().zip(&expected).zip(results) {
        match res {
            Ok(outcome) if outcome.payload == *exp => {}
            Ok(_) => {
                eprintln!("ppa-grid: selftest MISMATCH for unit '{}'", unit.tag);
                ok = false;
            }
            Err(e) => {
                eprintln!("ppa-grid: selftest unit '{}' failed: {e}", unit.tag);
                ok = false;
            }
        }
    }
    if !reports.iter().any(|r| r.died) {
        eprintln!("ppa-grid: selftest expected an injected worker death; none occurred");
        ok = false;
    }
    if stats.workers_lost == 0 || stats.redispatched == 0 {
        eprintln!(
            "ppa-grid: selftest expected the coordinator to lose a worker and re-dispatch (lost={}, redispatched={})",
            stats.workers_lost, stats.redispatched
        );
        ok = false;
    }
    ppa_obs::info!(
        "grid",
        "dispatched={} completed={} redispatched={} duplicates={} unit_errors={} workers_joined={} workers_lost={}",
        stats.dispatched, stats.completed, stats.redispatched, stats.duplicates, stats.unit_errors, stats.workers_joined, stats.workers_lost
    );
    if ok {
        println!(
            "ppa-grid: selftest passed (all transported results byte-identical to local execution)"
        );
        ExitCode::SUCCESS
    } else {
        println!("ppa-grid: selftest FAILED");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("work") => cmd_work(&args[1..]),
        Some("selftest") => cmd_selftest(&args[1..]),
        _ => usage(),
    }
}
