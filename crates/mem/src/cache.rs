use ppa_isa::CACHE_LINE_BYTES;
use std::collections::HashMap;

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub ways: u32,
    /// Hit latency in core cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero size/ways, or a capacity
    /// that is not a multiple of `ways * line_size`).
    pub fn new(size_bytes: u64, ways: u32, hit_latency: u64) -> Self {
        assert!(
            size_bytes > 0 && ways > 0,
            "cache must have capacity and ways"
        );
        assert!(
            size_bytes.is_multiple_of(ways as u64 * CACHE_LINE_BYTES),
            "capacity must be a whole number of sets"
        );
        CacheConfig {
            size_bytes,
            ways,
            hit_latency,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * CACHE_LINE_BYTES)
    }
}

/// Per-level access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines pushed out by fills.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Miss ratio; `0.0` when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    last_used: u64,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Line address of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// Sets are stored sparsely (keyed by set index) so the same type models a
/// 64 KB L1 and a 4 GB direct-mapped DRAM cache without gigabytes of host
/// memory. Only line *presence* and dirtiness are tracked; functional data
/// lives in [`crate::ArchMem`].
///
/// # Examples
///
/// ```
/// use ppa_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(64 * 1024, 8, 4));
/// assert!(!c.access(0x1000, false, 0).hit);
/// assert!(c.access(0x1000, false, 1).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: HashMap<u64, Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        Cache {
            cfg,
            sets: HashMap::new(),
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn index_tag(&self, addr: u64) -> (u64, u64) {
        let line = addr / CACHE_LINE_BYTES;
        (line % self.cfg.num_sets(), line / self.cfg.num_sets())
    }

    fn line_addr(&self, set: u64, tag: u64) -> u64 {
        (tag * self.cfg.num_sets() + set) * CACHE_LINE_BYTES
    }

    /// Accesses `addr`, allocating on miss; marks the line dirty when
    /// `write`. Returns whether it hit and any dirty line displaced.
    ///
    /// `now` only orders LRU decisions; a monotone per-access counter is
    /// kept internally as a tie-breaker.
    pub fn access(&mut self, addr: u64, write: bool, now: u64) -> AccessOutcome {
        self.tick = self.tick.wrapping_add(1);
        let stamp = now.wrapping_mul(16).wrapping_add(self.tick % 16);
        let (set_idx, tag) = self.index_tag(addr);
        let num_sets = self.cfg.num_sets();
        let ways = self.cfg.ways as usize;
        let set = self
            .sets
            .entry(set_idx)
            .or_insert_with(|| Vec::with_capacity(ways));

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.last_used = stamp;
            line.dirty |= write;
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }

        self.stats.misses += 1;
        let mut writeback = None;
        if set.len() < ways {
            set.push(Line {
                tag,
                dirty: write,
                last_used: stamp,
            });
        } else {
            // Evict the least recently used way.
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let old = set[victim];
            if old.dirty {
                self.stats.dirty_evictions += 1;
                writeback = Some((old.tag * num_sets + set_idx) * CACHE_LINE_BYTES);
            }
            set[victim] = Line {
                tag,
                dirty: write,
                last_used: stamp,
            };
        }
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Whether the line containing `addr` is present.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index_tag(addr);
        self.sets
            .get(&set_idx)
            .is_some_and(|s| s.iter().any(|l| l.tag == tag))
    }

    /// Whether the line containing `addr` is present *and dirty*.
    pub fn is_dirty(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index_tag(addr);
        self.sets
            .get(&set_idx)
            .is_some_and(|s| s.iter().any(|l| l.tag == tag && l.dirty))
    }

    /// Clears the dirty bit of `addr`'s line if present (the line has been
    /// written back, e.g. by a persist operation or `clwb`).
    pub fn clean(&mut self, addr: u64) {
        let (set_idx, tag) = self.index_tag(addr);
        if let Some(set) = self.sets.get_mut(&set_idx) {
            if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
                line.dirty = false;
            }
        }
    }

    /// Line addresses of every dirty line currently resident. Used by the
    /// consistency checker to know what a power failure would lose.
    pub fn dirty_lines(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (&set_idx, set) in &self.sets {
            for l in set {
                if l.dirty {
                    out.push(self.line_addr(set_idx, l.tag));
                }
            }
        }
        out
    }

    /// Drops all content (power failure: SRAM and DRAM caches are volatile).
    pub fn invalidate_all(&mut self) {
        self.sets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheConfig::new(4 * CACHE_LINE_BYTES, 2, 1))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0, false, 0).hit);
        assert!(c.access(0, false, 1).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_set_distinct_tags_coexist_up_to_ways() {
        let mut c = tiny();
        // Set stride is num_sets * line = 2 * 64 = 128.
        c.access(0, false, 0);
        c.access(128, false, 1);
        assert!(c.contains(0));
        assert!(c.contains(128));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        c.access(0, false, 0); // way A
        c.access(128, false, 1); // way B
        c.access(0, false, 2); // touch A
        let out = c.access(256, false, 3); // evicts B (LRU)
        assert!(!out.hit);
        assert!(c.contains(0));
        assert!(!c.contains(128));
    }

    #[test]
    fn dirty_eviction_reports_victim_address() {
        let mut c = tiny();
        c.access(0, true, 0);
        c.access(128, false, 1);
        let out = c.access(256, false, 2); // evicts line 0, dirty
        assert_eq!(out.writeback, Some(0));
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn clean_eviction_reports_nothing() {
        let mut c = tiny();
        c.access(0, false, 0);
        c.access(128, false, 1);
        let out = c.access(256, false, 2);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_sets_dirty_and_clean_clears_it() {
        let mut c = tiny();
        c.access(0, false, 0);
        assert!(!c.is_dirty(0));
        c.access(0, true, 1);
        assert!(c.is_dirty(0));
        c.clean(0);
        assert!(!c.is_dirty(0));
        assert!(c.contains(0));
    }

    #[test]
    fn dirty_lines_enumerates_all() {
        let mut c = tiny();
        c.access(0, true, 0);
        c.access(64, true, 1);
        c.access(128, false, 2);
        let mut d = c.dirty_lines();
        d.sort_unstable();
        assert_eq!(d, vec![0, 64]);
    }

    #[test]
    fn invalidate_all_clears_content() {
        let mut c = tiny();
        c.access(0, true, 0);
        c.invalidate_all();
        assert!(!c.contains(0));
        assert!(c.dirty_lines().is_empty());
    }

    #[test]
    fn direct_mapped_giant_cache_is_sparse() {
        // 4 GB direct-mapped DRAM cache: must not allocate 64M sets up front.
        let mut c = Cache::new(CacheConfig::new(4 << 30, 1, 60));
        c.access(0x1234_5678, true, 0);
        assert!(c.contains(0x1234_5678));
        assert_eq!(c.dirty_lines().len(), 1);
    }

    #[test]
    fn direct_mapped_conflict_misses() {
        let mut c = Cache::new(CacheConfig::new(2 * CACHE_LINE_BYTES, 1, 1));
        c.access(0, true, 0);
        // Same set (stride 2 lines = 128 B), different tag.
        let out = c.access(128, false, 1);
        assert_eq!(out.writeback, Some(0));
        assert!(!c.contains(0));
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = tiny();
        c.access(0, false, 0);
        c.access(0, false, 1);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_panics() {
        CacheConfig::new(100, 3, 1);
    }
}
