//! Multiple memory controllers (§6, "Multiple Memory Controller (MC)
//! Support").
//!
//! Table 2's machine has two integrated memory controllers. PPA supports
//! any number "without any hassle": region-level persistence guarantees
//! that a younger store destined to a near MC can never be durable before
//! an older one destined to a far MC *across* regions, and failures inside
//! a region are repaired by replaying the whole region anyway.
//!
//! [`MultiChannelNvm`] models that organisation: cache lines interleave
//! across `n` channels (each an independent [`crate::Nvm`] with its own
//! WPQ and write bandwidth), so channel completion order can arbitrarily
//! permute store persistence order — exactly the hazard §6 argues PPA
//! tolerates.

use crate::nvm::{Nvm, NvmConfig, NvmStats};

/// An NVM built from `n` independent channels with line interleaving.
///
/// The aggregate write bandwidth is split evenly across channels, keeping
/// total device capability identical to a single-channel [`Nvm`] with the
/// same configuration — only the *ordering* behaviour differs.
///
/// # Examples
///
/// ```
/// use ppa_mem::{MultiChannelNvm, NvmConfig};
///
/// let mut nvm = MultiChannelNvm::new(NvmConfig::paper_default(), 2);
/// // Adjacent lines land on different controllers.
/// assert_ne!(nvm.channel_of(0x0), nvm.channel_of(0x40));
/// assert!(nvm.enqueue_write(0x0, 0).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannelNvm {
    channels: Vec<Nvm>,
}

impl MultiChannelNvm {
    /// Creates an `n`-channel device. Each channel receives `1/n` of the
    /// configured write bandwidth and a full-size WPQ (WPQs are per
    /// controller on real platforms).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(cfg: NvmConfig, n: usize) -> Self {
        assert!(n > 0, "need at least one memory controller");
        let per_channel = NvmConfig {
            write_bytes_per_cycle: cfg.write_bytes_per_cycle / n as f64,
            ..cfg
        };
        MultiChannelNvm {
            channels: (0..n).map(|_| Nvm::new(per_channel)).collect(),
        }
    }

    /// Number of controllers.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Which controller serves the line containing `addr` (line-granular
    /// interleaving).
    pub fn channel_of(&self, addr: u64) -> usize {
        ((addr / ppa_isa::CACHE_LINE_BYTES) % self.channels.len() as u64) as usize
    }

    /// Routes a line write to its channel; same contract as
    /// [`Nvm::enqueue_write`].
    ///
    /// # Errors
    ///
    /// Returns the earliest retry cycle when that channel's WPQ is full.
    pub fn enqueue_write(&mut self, line_addr: u64, now: u64) -> Result<u64, u64> {
        let ch = self.channel_of(line_addr);
        self.channels[ch].enqueue_write(line_addr, now)
    }

    /// Routes a line read to its channel.
    pub fn read(&mut self, line_addr: u64, now: u64) -> u64 {
        let ch = self.channel_of(line_addr);
        self.channels[ch].read(line_addr, now)
    }

    /// Retires completed writes on every channel.
    pub fn drain(&mut self, now: u64) {
        for c in &mut self.channels {
            c.drain(now);
        }
    }

    /// Merged statistics across channels.
    pub fn stats(&self) -> NvmStats {
        let mut s = NvmStats::default();
        for c in &self.channels {
            s.reads += c.stats().reads;
            s.writes += c.stats().writes;
            s.combined_writes += c.stats().combined_writes;
            s.wpq_full_events += c.stats().wpq_full_events;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NvmConfig {
        NvmConfig {
            read_latency: 350,
            write_latency: 180,
            wpq_entries: 2,
            write_bytes_per_cycle: 2.0,
            write_combining: true,
        }
    }

    #[test]
    fn lines_interleave_across_channels() {
        let nvm = MultiChannelNvm::new(cfg(), 2);
        assert_eq!(nvm.channel_of(0x000), 0);
        assert_eq!(nvm.channel_of(0x040), 1);
        assert_eq!(nvm.channel_of(0x080), 0);
        // Sub-line addresses map with their line.
        assert_eq!(nvm.channel_of(0x07f), 1);
    }

    #[test]
    fn channels_have_independent_wpqs() {
        let mut nvm = MultiChannelNvm::new(cfg(), 2);
        // Fill channel 0's 2-entry WPQ.
        nvm.enqueue_write(0x000, 0).unwrap();
        nvm.enqueue_write(0x080, 0).unwrap();
        assert!(nvm.enqueue_write(0x100, 0).is_err(), "channel 0 full");
        // Channel 1 still has room.
        assert!(nvm.enqueue_write(0x040, 0).is_ok());
    }

    #[test]
    fn completion_order_can_invert_program_order() {
        // An older store to a busy far channel completes after a younger
        // store to an idle near one — the §6 hazard.
        let mut nvm = MultiChannelNvm::new(cfg(), 2);
        nvm.enqueue_write(0x000, 0).unwrap(); // pre-load channel 0
        let older = nvm.enqueue_write(0x080, 0).unwrap(); // queued behind
        let younger = nvm.enqueue_write(0x040, 0).unwrap(); // idle channel 1
        assert!(
            younger < older,
            "younger ({younger}) should complete before older ({older})"
        );
    }

    #[test]
    fn aggregate_bandwidth_matches_single_channel() {
        // Writing 4 alternating lines through 2 channels takes the same
        // channel time as 4 lines through 1 channel of 2x bandwidth.
        let roomy = NvmConfig {
            wpq_entries: 8,
            ..cfg()
        };
        let mut one = Nvm::new(roomy);
        let mut two = MultiChannelNvm::new(roomy, 2);
        let mut last_one = 0;
        let mut last_two = 0;
        for i in 0..4u64 {
            last_one = last_one.max(one.enqueue_write(i * 64, 0).unwrap());
            last_two = last_two.max(two.enqueue_write(i * 64, 0).unwrap());
        }
        assert_eq!(last_one, last_two);
    }

    #[test]
    fn stats_merge_channels() {
        let mut nvm = MultiChannelNvm::new(cfg(), 4);
        for i in 0..8u64 {
            nvm.enqueue_write(i * 64, 0).unwrap();
        }
        nvm.read(0, 0);
        let s = nvm.stats();
        assert_eq!(s.writes, 8);
        assert_eq!(s.reads, 1);
    }

    #[test]
    #[should_panic(expected = "at least one memory controller")]
    fn zero_channels_panics() {
        MultiChannelNvm::new(cfg(), 0);
    }
}
