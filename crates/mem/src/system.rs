use crate::cache::{Cache, CacheStats};
use crate::config::{Backing, MemConfig};
use crate::image::{ArchMem, NvmImage};
use crate::multi_mc::MultiChannelNvm;
use crate::nvm::NvmStats;
use crate::write_buffer::{WriteBuffer, WriteBufferStats};
use ppa_isa::line_of;

/// Aggregated memory-system statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// Per-core L1D stats merged.
    pub l1d: CacheStats,
    /// L2 stats (merged across private L2s when applicable).
    pub l2: CacheStats,
    /// L3 stats, if configured.
    pub l3: CacheStats,
    /// DRAM cache stats, if configured.
    pub dram: CacheStats,
    /// NVM stats, if configured.
    pub nvm: NvmStats,
    /// Write-buffer stats merged across cores.
    pub wb: WriteBufferStats,
    /// Extra cycles accesses spent waiting on a full WPQ (backpressure).
    pub wpq_stall_cycles: u64,
}

/// The complete simulated memory system shared by all cores.
///
/// Owns per-core L1Ds and write buffers, the (shared or private) L2, the
/// optional L3 and DRAM cache, the NVM device, and the functional state
/// (architectural memory and NVM image) the crash-consistency checker
/// inspects. See the crate docs for the timing model.
///
/// # Examples
///
/// ```
/// use ppa_mem::{MemConfig, MemorySystem};
///
/// let mut mem = MemorySystem::new(MemConfig::memory_mode(), 2);
/// let lat = mem.store_merge(1, 0x100, 0);
/// mem.commit_store_value(0x100, 7);
/// assert!(lat >= 4);
/// assert_eq!(mem.arch_mem().read(0x100), Some(7));
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Option<Cache>,
    dram: Option<Cache>,
    nvm: Option<MultiChannelNvm>,
    wb: Vec<WriteBuffer>,
    /// Cycle until which each core's Capri persist path is busy.
    capri_busy_until: Vec<u64>,
    arch: ArchMem,
    nvm_image: NvmImage,
    wpq_stall_cycles: u64,
}

impl MemorySystem {
    /// Builds the system for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(cfg: MemConfig, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        let l2_count = if cfg.l2_shared { 1 } else { num_cores };
        MemorySystem {
            l1d: (0..num_cores).map(|_| Cache::new(cfg.l1d)).collect(),
            l2: (0..l2_count).map(|_| Cache::new(cfg.l2)).collect(),
            l3: cfg.l3.map(Cache::new),
            dram: cfg
                .dram_cache
                .map(|d| Cache::new(crate::CacheConfig::new(d.size_bytes, 1, d.hit_latency))),
            nvm: cfg
                .nvm()
                .map(|n| MultiChannelNvm::new(*n, cfg.memory_controllers)),
            wb: (0..num_cores)
                .map(|_| WriteBuffer::new(cfg.write_buffer_entries, cfg.persist_coalescing))
                .collect(),
            capri_busy_until: vec![0; num_cores],
            arch: ArchMem::new(),
            nvm_image: NvmImage::new(),
            wpq_stall_cycles: 0,
            cfg,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.l1d.len()
    }

    fn l2_idx(&self, core: usize) -> usize {
        if self.cfg.l2_shared {
            0
        } else {
            core
        }
    }

    /// Sends a dirty line to the backing store, charging WPQ backpressure
    /// to the returned latency penalty and updating the NVM image.
    fn backing_write(&mut self, line_addr: u64, now: u64) -> u64 {
        match (&mut self.nvm, &self.cfg.backing) {
            (Some(nvm), _) => {
                let mut penalty = 0;
                let mut t = now;
                loop {
                    match nvm.enqueue_write(line_addr, t) {
                        Ok(_) => break,
                        Err(retry) => {
                            penalty += retry - t;
                            t = retry;
                        }
                    }
                }
                self.wpq_stall_cycles += penalty;
                // The WPQ is in the persistence domain: the line's current
                // architectural content is now durable.
                self.nvm_image.persist_line(line_addr, &self.arch);
                penalty
            }
            (None, Backing::Dram { .. }) => 0,
            (None, Backing::Nvm(_)) => unreachable!("NVM backing implies a device"),
        }
    }

    /// Reads a line from the backing store, returning its latency.
    fn backing_read(&mut self, line_addr: u64, now: u64) -> u64 {
        match (&mut self.nvm, &self.cfg.backing) {
            (Some(nvm), _) => nvm.read(line_addr, now) - now,
            (None, Backing::Dram { latency }) => *latency,
            (None, Backing::Nvm(_)) => unreachable!("NVM backing implies a device"),
        }
    }

    /// Walks the hierarchy for an access at `addr`, allocating lines on the
    /// way down and cascading dirty evictions. Returns the access latency.
    fn walk(&mut self, core: usize, addr: u64, write: bool, now: u64) -> u64 {
        let addr = line_of(addr);
        let mut lat = self.cfg.l1d.hit_latency;
        let out = self.l1d[core].access(addr, write, now);
        // Dirty lines displaced at each level fall to the next one.
        let mut down: Vec<u64> = Vec::new();
        down.extend(out.writeback);
        let mut hit = out.hit;

        // L2.
        if !hit {
            lat += self.cfg.l2.hit_latency;
            let i = self.l2_idx(core);
            let o = self.l2[i].access(addr, false, now);
            hit = o.hit;
            let mut next: Vec<u64> = Vec::new();
            next.extend(o.writeback);
            for w in down {
                next.extend(self.l2[i].access(w, true, now).writeback);
            }
            down = next;
        } else {
            // L1 victims still need a home even on an L1 hit-after-fill;
            // (cannot happen: hits displace nothing) — keep them flowing.
            for w in down.drain(..) {
                let i = self.l2_idx(core);
                let o = self.l2[i].access(w, true, now);
                debug_assert!(o.writeback.is_none() || !o.hit);
                if let Some(v) = o.writeback {
                    self.sink_below_l2(core, v, now, &mut lat);
                }
            }
            return lat;
        }

        // L3 (optional).
        if !hit {
            if let Some(l3) = self.l3.as_mut() {
                lat += l3.config().hit_latency;
                let o = l3.access(addr, false, now);
                hit = o.hit;
                let mut next: Vec<u64> = Vec::new();
                next.extend(o.writeback);
                for w in down {
                    next.extend(l3.access(w, true, now).writeback);
                }
                down = next;
            }
        } else {
            for w in down.drain(..) {
                self.sink_below_l2(core, w, now, &mut lat);
            }
            return lat;
        }

        // DRAM cache (optional).
        if !hit {
            if let Some(dram) = self.dram.as_mut() {
                lat += dram.config().hit_latency;
                let o = dram.access(addr, false, now);
                hit = o.hit;
                let mut next: Vec<u64> = Vec::new();
                next.extend(o.writeback);
                for w in down {
                    next.extend(dram.access(w, true, now).writeback);
                }
                down = next;
            }
        } else {
            for w in down.drain(..) {
                self.sink_below_l3(core, w, now, &mut lat);
            }
            return lat;
        }

        // Backing store.
        if !hit {
            lat += self.backing_read(addr, now);
        }
        for w in down {
            lat += self.backing_write(w, now);
        }
        lat
    }

    /// Sinks a dirty line evicted from L2 into L3/DRAM/backing.
    fn sink_below_l2(&mut self, core: usize, line: u64, now: u64, lat: &mut u64) {
        let _ = core;
        let mut down = vec![line];
        if let Some(l3) = self.l3.as_mut() {
            let mut next = Vec::new();
            for w in down {
                next.extend(l3.access(w, true, now).writeback);
            }
            down = next;
        }
        for w in down {
            self.sink_below_l3(0, w, now, lat);
        }
    }

    /// Sinks a dirty line evicted from L3 (or L2 when no L3) into the DRAM
    /// cache or the backing store.
    fn sink_below_l3(&mut self, _core: usize, line: u64, now: u64, lat: &mut u64) {
        let mut down = vec![line];
        if let Some(dram) = self.dram.as_mut() {
            let mut next = Vec::new();
            for w in down {
                next.extend(dram.access(w, true, now).writeback);
            }
            down = next;
        }
        for w in down {
            *lat += self.backing_write(w, now);
        }
    }

    /// A demand load: returns the latency in cycles.
    pub fn load(&mut self, core: usize, addr: u64, now: u64) -> u64 {
        self.walk(core, addr, false, now)
    }

    /// Merges a committed store into the L1D (write-allocate), returning
    /// the merge latency. Timing only; couple it with
    /// [`MemorySystem::commit_store_value`] for the functional effect.
    pub fn store_merge(&mut self, core: usize, addr: u64, now: u64) -> u64 {
        self.walk(core, addr, true, now)
    }

    /// Functional effect of a committed store: updates architectural
    /// memory. Call in commit order.
    pub fn commit_store_value(&mut self, addr: u64, value: u64) {
        self.arch.write(addr, value);
    }

    /// Functional read of the latest committed value (loads are satisfied
    /// from architectural memory: the workloads are data-race-free, so the
    /// last committed store to an address is the only visible value).
    pub fn functional_read(&self, addr: u64) -> u64 {
        self.arch.read(addr).unwrap_or(0)
    }

    /// Enqueues an asynchronous persist of the line containing `addr` into
    /// the core's write buffer (PPA's store persistence). The L1D
    /// controller issues it straight toward the WPQ, so it becomes
    /// eligible immediately. Returns `false` when the buffer is full; the
    /// caller must stall commit and retry.
    pub fn persist_enqueue(&mut self, core: usize, addr: u64, now: u64) -> bool {
        let delay = self.cfg.persist_path_latency;
        self.wb[core].enqueue_delayed(line_of(addr), now, delay)
    }

    /// Marks the line containing `addr` as already resident (clean) in
    /// every L2 bank (hot working sets are SRAM-warm in steady state).
    pub fn prewarm_l2(&mut self, addr: u64) {
        for l2 in &mut self.l2 {
            if !l2.contains(addr) {
                l2.access(line_of(addr), false, 0);
            }
        }
    }

    /// Marks the line containing `addr` as already resident (clean) in the
    /// DRAM cache. Models the steady state reached during the billions of
    /// fast-forwarded instructions the paper skips before measurement: a
    /// working set that became DRAM-cache resident long ago. No-op when
    /// the configuration has no DRAM cache.
    pub fn prewarm_dram(&mut self, addr: u64) {
        if let Some(dram) = self.dram.as_mut() {
            if !dram.contains(addr) {
                dram.access(line_of(addr), false, 0);
            }
        }
    }

    /// Enqueues a `clwb` flush of the line containing `addr`. Unlike PPA's
    /// direct write-back path, the flush traverses the cache hierarchy
    /// (L2, L3, DRAM cache) before it can be accepted by the WPQ, so its
    /// acknowledgment is delayed by the full path latency — the reason
    /// ReplayCache's short regions cannot hide persistence (§2.4).
    pub fn clwb_enqueue(&mut self, core: usize, addr: u64, now: u64) -> bool {
        let delay = self.clwb_path_latency();
        self.wb[core].enqueue_delayed(line_of(addr), now, delay)
    }

    /// Latency for a flush to traverse the hierarchy below L1: through
    /// each SRAM level, then to the memory-controller head (half a DRAM
    /// round trip — the flush is acknowledged at the WPQ, not by the DRAM
    /// array).
    pub fn clwb_path_latency(&self) -> u64 {
        let mut lat = self.cfg.l2.hit_latency;
        if let Some(l3) = &self.cfg.l3 {
            lat += l3.hit_latency;
        }
        if let Some(d) = &self.cfg.dram_cache {
            lat += d.hit_latency / 2;
        }
        lat
    }

    /// Outstanding (unacknowledged) persists for `core` — the §4.3
    /// persistence counter the region boundary compares with zero.
    pub fn persist_outstanding(&self, core: usize) -> usize {
        self.wb[core].outstanding()
    }

    /// Whether the core's write buffer can accept a non-coalescing entry.
    pub fn persist_has_room(&self, core: usize, addr: u64) -> bool {
        self.wb[core].has_room() || self.wb[core].would_coalesce(line_of(addr))
    }

    /// Capri: pushes `bytes` of store data into the core's battery-backed
    /// redo buffer and schedules its drain over the dedicated persist path.
    /// The data is durable immediately (the buffer is battery-backed), but
    /// region boundaries must wait for the drain so the buffer never holds
    /// two regions.
    pub fn capri_enqueue(&mut self, core: usize, addr: u64, value: u64, bytes: u64, now: u64) {
        let start = self.capri_busy_until[core].max(now);
        let xfer = (bytes as f64 / self.cfg.capri_path_bytes_per_cycle).ceil() as u64;
        self.capri_busy_until[core] = start + xfer;
        self.nvm_image.write_word(addr, value);
    }

    /// Cycle at which the core's Capri redo buffer finishes draining.
    pub fn capri_drained_at(&self, core: usize) -> u64 {
        self.capri_busy_until[core]
    }

    /// Bytes still queued in the core's Capri redo buffer at `now`
    /// (backlog implied by the drain schedule).
    pub fn capri_backlog_bytes(&self, core: usize, now: u64) -> u64 {
        let remaining_cycles = self.capri_busy_until[core].saturating_sub(now);
        (remaining_cycles as f64 * self.cfg.capri_path_bytes_per_cycle).ceil() as u64
    }

    /// Whether the core's redo buffer has room for another region — the
    /// Capri region barrier's gating condition. The buffer is
    /// battery-backed, so a barrier need not wait for a full drain, only
    /// for the compiler's worst-case next-region bound to fit.
    pub fn capri_has_room(&self, core: usize, now: u64, next_region_bytes: u64) -> bool {
        self.capri_backlog_bytes(core, now) + next_region_bytes <= self.cfg.capri_buffer_bytes
    }

    /// Advances background machinery by one cycle: write buffers issue to
    /// the WPQ and acknowledged persists retire.
    pub fn tick(&mut self, now: u64) {
        let MemorySystem {
            wb,
            nvm,
            nvm_image,
            arch,
            l1d,
            ..
        } = self;
        if let Some(nvm) = nvm.as_mut() {
            nvm.drain(now);
            // Cores contend for the shared WPQ ports through a rotating
            // round-robin: the core served first advances by one each
            // cycle, so no core is structurally favoured and the
            // interleaving is a pure function of the cycle number
            // (deterministic at any core count).
            let n = wb.len();
            for k in 0..n {
                let core = (now as usize + k) % n;
                let l1 = &mut l1d[core];
                wb[core].tick(
                    now,
                    |line, t| nvm.enqueue_write(line, t),
                    |line| {
                        // The write-back completed: the line's current
                        // content (including any stores coalesced while it
                        // was in flight) is durable, and the L1D copy is
                        // clean.
                        nvm_image.persist_line(line, arch);
                        l1.clean(line);
                    },
                );
            }
        }
    }

    /// Golden architectural memory (every committed store value).
    pub fn arch_mem(&self) -> &ArchMem {
        &self.arch
    }

    /// The NVM image — what survives a power failure.
    pub fn nvm_image(&self) -> &NvmImage {
        &self.nvm_image
    }

    /// Mutable NVM image, used by the recovery protocol to replay stores
    /// and by checkpointing to record PPA's structures.
    pub fn nvm_image_mut(&mut self) -> &mut NvmImage {
        &mut self.nvm_image
    }

    /// Models a power failure: every volatile structure (SRAM caches, DRAM
    /// cache, write buffers) loses its content. The NVM image and anything
    /// already accepted into the WPQ survive.
    pub fn power_failure(&mut self) {
        for c in &mut self.l1d {
            c.invalidate_all();
        }
        for c in &mut self.l2 {
            c.invalidate_all();
        }
        if let Some(l3) = self.l3.as_mut() {
            l3.invalidate_all();
        }
        if let Some(d) = self.dram.as_mut() {
            d.invalidate_all();
        }
        for b in &mut self.wb {
            b.clear();
        }
    }

    /// Merged statistics snapshot.
    pub fn stats(&self) -> MemStats {
        let mut s = MemStats::default();
        for c in &self.l1d {
            s.l1d.hits += c.stats().hits;
            s.l1d.misses += c.stats().misses;
            s.l1d.dirty_evictions += c.stats().dirty_evictions;
        }
        for c in &self.l2 {
            s.l2.hits += c.stats().hits;
            s.l2.misses += c.stats().misses;
            s.l2.dirty_evictions += c.stats().dirty_evictions;
        }
        if let Some(l3) = &self.l3 {
            s.l3 = *l3.stats();
        }
        if let Some(d) = &self.dram {
            s.dram = *d.stats();
        }
        if let Some(n) = &self.nvm {
            s.nvm = n.stats();
        }
        for b in &self.wb {
            s.wb.enqueued += b.stats().enqueued;
            s.wb.coalesced += b.stats().coalesced;
            s.wb.issued += b.stats().issued;
            s.wb.full_rejections += b.stats().full_rejections;
        }
        s.wpq_stall_cycles = self.wpq_stall_cycles;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    #[test]
    fn cold_miss_costs_full_hierarchy() {
        let mut m = MemorySystem::new(MemConfig::memory_mode(), 1);
        let lat = m.load(0, 0x4000, 0);
        // L1 (4) + L2 (44) + DRAM cache (60) + NVM read (350).
        assert_eq!(lat, 4 + 44 + 60 + 350);
    }

    #[test]
    fn warm_hit_costs_l1_only() {
        let mut m = MemorySystem::new(MemConfig::memory_mode(), 1);
        m.load(0, 0x4000, 0);
        assert_eq!(m.load(0, 0x4000, 500), 4);
    }

    #[test]
    fn l2_hit_after_l1_conflict() {
        let mut m = MemorySystem::new(MemConfig::memory_mode(), 1);
        m.load(0, 0x4000, 0);
        // Evict 0x4000 from the 128-set L1 with 8 conflicting lines
        // (stride = sets * line = 128 * 64 = 8192).
        for i in 1..=8u64 {
            m.load(0, 0x4000 + i * 8192, i);
        }
        let lat = m.load(0, 0x4000, 100);
        assert_eq!(lat, 4 + 44, "should hit in L2");
    }

    #[test]
    fn app_direct_pays_nvm_latency_on_l2_miss() {
        let mut m = MemorySystem::new(MemConfig::app_direct(), 1);
        assert_eq!(m.load(0, 0x4000, 0), 4 + 44 + 350);
    }

    #[test]
    fn dram_only_pays_dram_latency_on_l2_miss() {
        let mut m = MemorySystem::new(MemConfig::dram_only(), 1);
        assert_eq!(m.load(0, 0x4000, 0), 4 + 44 + 60);
    }

    #[test]
    fn deep_hierarchy_adds_l3() {
        let mut m = MemorySystem::new(MemConfig::deep_hierarchy(), 1);
        assert_eq!(m.load(0, 0x4000, 0), 4 + 14 + 44 + 60 + 350);
    }

    #[test]
    fn committed_values_visible_functionally() {
        let mut m = MemorySystem::new(MemConfig::memory_mode(), 1);
        m.store_merge(0, 0x100, 0);
        m.commit_store_value(0x100, 99);
        assert_eq!(m.functional_read(0x100), 99);
        assert_eq!(m.functional_read(0x9999), 0);
    }

    #[test]
    fn persisted_store_reaches_nvm_image_via_write_buffer() {
        let mut m = MemorySystem::new(MemConfig::memory_mode(), 1);
        m.store_merge(0, 0x100, 0);
        m.commit_store_value(0x100, 7);
        assert!(m.persist_enqueue(0, 0x100, 0));
        assert_eq!(m.persist_outstanding(0), 1);
        // Drive ticks until the persist is acknowledged.
        let mut t = 0;
        while m.persist_outstanding(0) > 0 {
            t += 1;
            m.tick(t);
            assert!(t < 10_000, "persist must complete");
        }
        assert_eq!(m.nvm_image().read(0x100), Some(7));
    }

    #[test]
    fn unpersisted_store_lost_on_power_failure() {
        let mut m = MemorySystem::new(MemConfig::memory_mode(), 1);
        m.store_merge(0, 0x100, 0);
        m.commit_store_value(0x100, 7);
        m.power_failure();
        assert_eq!(m.nvm_image().read(0x100), None);
        assert_eq!(m.nvm_image().diff(m.arch_mem()), vec![0x100]);
    }

    #[test]
    fn capri_path_serialises_by_bandwidth() {
        let mut m = MemorySystem::new(MemConfig::memory_mode(), 1);
        // 2 B/cycle path: an 8-byte store takes 4 cycles.
        m.capri_enqueue(0, 0x100, 1, 8, 0);
        assert_eq!(m.capri_drained_at(0), 4);
        m.capri_enqueue(0, 0x108, 2, 8, 0);
        assert_eq!(m.capri_drained_at(0), 8);
        // Capri data is durable immediately (battery-backed redo buffer).
        assert_eq!(m.nvm_image().read(0x100), Some(1));
    }

    #[test]
    fn dirty_eviction_from_dram_cache_persists_line() {
        // Tiny DRAM cache so an eviction is easy to force.
        let mut cfg = MemConfig::memory_mode();
        cfg.dram_cache = Some(crate::DramCacheConfig {
            size_bytes: 2 * 64,
            hit_latency: 60,
        });
        // Also shrink L1/L2 so the dirty line actually reaches DRAM.
        cfg.l1d = crate::CacheConfig::new(64, 1, 4);
        cfg.l2 = crate::CacheConfig::new(2 * 64, 1, 44);
        let mut m = MemorySystem::new(cfg, 1);
        m.store_merge(0, 0x0, 0);
        m.commit_store_value(0x0, 5);
        // Push conflicting lines through to evict 0x0 all the way down.
        // L1 has 1 set; L2 and DRAM have 2 sets each. Lines 0x80, 0x100,
        // 0x180... conflict at various levels.
        for i in 1..32u64 {
            m.load(0, i * 0x80, i);
        }
        assert_eq!(
            m.nvm_image().read(0x0),
            Some(5),
            "natural eviction must persist the line"
        );
    }

    #[test]
    fn stats_aggregate_across_cores() {
        let mut m = MemorySystem::new(MemConfig::memory_mode(), 2);
        m.load(0, 0x1000, 0);
        m.load(1, 0x2000, 0);
        let s = m.stats();
        assert_eq!(s.l1d.misses, 2);
        assert_eq!(s.nvm.reads, 2);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        MemorySystem::new(MemConfig::memory_mode(), 0);
    }
}
