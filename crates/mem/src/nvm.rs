use ppa_isa::CACHE_LINE_BYTES;
use std::collections::VecDeque;

/// PMEM (NVM) device configuration, matching Table 2's defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmConfig {
    /// Read latency in core cycles (175 ns → 350 cycles at 2 GHz).
    pub read_latency: u64,
    /// Write latency in core cycles (90 ns → 180 cycles).
    pub write_latency: u64,
    /// Write-pending-queue entries (default 16).
    pub wpq_entries: usize,
    /// Sustained write bandwidth in bytes per core cycle
    /// (2.3 GB/s → 1.15 B/cycle at 2 GHz).
    pub write_bytes_per_cycle: f64,
    /// Whether the WPQ combines writes to a line already pending (real
    /// PMEM DIMMs do; the ablation study switches this off).
    pub write_combining: bool,
}

impl NvmConfig {
    /// The paper's default PMEM: 175/90 ns, 16-entry WPQ, 2.3 GB/s.
    pub fn paper_default() -> Self {
        NvmConfig {
            read_latency: crate::ns_to_cycles(175.0),
            write_latency: crate::ns_to_cycles(90.0),
            wpq_entries: 16,
            write_bytes_per_cycle: crate::gbps_to_bytes_per_cycle(2.3),
            write_combining: true,
        }
    }

    /// Same device with WPQ write combining disabled (ablation).
    pub fn without_write_combining(mut self) -> Self {
        self.write_combining = false;
        self
    }

    /// Same device with a different WPQ depth (Figure 15 sweep).
    pub fn with_wpq_entries(mut self, entries: usize) -> Self {
        assert!(entries > 0, "WPQ must have at least one entry");
        self.wpq_entries = entries;
        self
    }

    /// Same device with a different write bandwidth in GB/s (Figure 18).
    pub fn with_write_bandwidth_gbps(mut self, gbps: f64) -> Self {
        assert!(gbps > 0.0, "write bandwidth must be positive");
        self.write_bytes_per_cycle = crate::gbps_to_bytes_per_cycle(gbps);
        self
    }
}

/// NVM traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NvmStats {
    /// Line reads served.
    pub reads: u64,
    /// Line writes accepted into the WPQ.
    pub writes: u64,
    /// Writes combined into a WPQ entry already pending for the same line.
    pub combined_writes: u64,
    /// Cycles during which at least one requester found the WPQ full.
    pub wpq_full_events: u64,
}

#[derive(Debug, Clone, Copy)]
struct WpqEntry {
    line_addr: u64,
    completes_at: u64,
}

/// The PMEM device: a write-pending queue in front of the media, with
/// bounded write bandwidth.
///
/// Writes occupy a WPQ entry from acceptance until the media write
/// completes; bandwidth serialises media writes (one line costs
/// `line / write_bytes_per_cycle` cycles of channel time plus the fixed
/// media latency). Reads bypass the WPQ (reads and writes use separate
/// queues on real PMEM DIMMs) and are charged the fixed read latency.
///
/// The WPQ itself is inside the ADR (asynchronous DRAM refresh) domain:
/// entries that made it into the queue are considered persistent, which is
/// exactly how Intel's ADR domain behaves and what the paper assumes when
/// it counts a store persisted once acknowledged.
///
/// # Examples
///
/// ```
/// use ppa_mem::{Nvm, NvmConfig};
///
/// let mut nvm = Nvm::new(NvmConfig::paper_default());
/// let done = nvm.enqueue_write(0x1000, 0).expect("WPQ has room");
/// assert!(done > 180, "write takes at least the media latency");
/// ```
#[derive(Debug, Clone)]
pub struct Nvm {
    cfg: NvmConfig,
    wpq: VecDeque<WpqEntry>,
    /// Cycle at which the write channel becomes free again.
    channel_free_at: u64,
    stats: NvmStats,
}

impl Nvm {
    /// Creates an idle device.
    pub fn new(cfg: NvmConfig) -> Self {
        Nvm {
            cfg,
            wpq: VecDeque::with_capacity(cfg.wpq_entries),
            channel_free_at: 0,
            stats: NvmStats::default(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &NvmConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// Retires WPQ entries whose media write has completed by `now`.
    pub fn drain(&mut self, now: u64) {
        while let Some(front) = self.wpq.front() {
            if front.completes_at <= now {
                self.wpq.pop_front();
            } else {
                break;
            }
        }
    }

    /// Free WPQ entries after draining completions up to `now`.
    pub fn wpq_free(&mut self, now: u64) -> usize {
        self.drain(now);
        self.cfg.wpq_entries - self.wpq.len()
    }

    /// Number of occupied WPQ entries (without draining).
    pub fn wpq_occupancy(&self) -> usize {
        self.wpq.len()
    }

    /// Attempts to enqueue a line write at `now`. On success returns the
    /// cycle at which the write is durable; on failure (WPQ full) returns
    /// the earliest cycle at which an entry will free up, so the caller can
    /// retry — this backpressure is the WPQ contention of §7.7.
    pub fn enqueue_write(&mut self, line_addr: u64, now: u64) -> Result<u64, u64> {
        self.drain(now);
        // Write combining: a line already pending in the WPQ absorbs the
        // new write — the eventual media write carries the newest data.
        // This is what lets PPA's per-store write-backs of hot lines stay
        // within the device's write bandwidth (§4.3).
        if self.cfg.write_combining {
            if let Some(e) = self.wpq.iter().find(|e| e.line_addr == line_addr) {
                self.stats.combined_writes += 1;
                return Ok(e.completes_at);
            }
        }
        if self.wpq.len() >= self.cfg.wpq_entries {
            self.stats.wpq_full_events += 1;
            let retry_at = self
                .wpq
                .front()
                .map(|e| e.completes_at)
                .expect("full WPQ is non-empty");
            return Err(retry_at.max(now + 1));
        }
        let start = now.max(self.channel_free_at);
        let xfer = (CACHE_LINE_BYTES as f64 / self.cfg.write_bytes_per_cycle).ceil() as u64;
        self.channel_free_at = start + xfer;
        let completes_at = start + xfer + self.cfg.write_latency;
        self.wpq.push_back(WpqEntry {
            line_addr,
            completes_at,
        });
        self.stats.writes += 1;
        Ok(completes_at)
    }

    /// Reads a line at `now`, returning the completion cycle.
    pub fn read(&mut self, _line_addr: u64, now: u64) -> u64 {
        self.stats.reads += 1;
        now + self.cfg.read_latency
    }

    /// Line addresses currently sitting in the WPQ. They are inside the
    /// persistence domain, so the consistency checker counts them as
    /// durable even if power fails before the media write finishes.
    pub fn wpq_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.wpq.iter().map(|e| e.line_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Nvm {
        Nvm::new(NvmConfig {
            read_latency: 350,
            write_latency: 180,
            wpq_entries: 2,
            write_bytes_per_cycle: 2.0, // 64B line = 32 cycles of channel
            write_combining: true,
        })
    }

    #[test]
    fn write_completion_includes_transfer_and_media_latency() {
        let mut nvm = small();
        let done = nvm.enqueue_write(0, 0).unwrap();
        assert_eq!(done, 32 + 180);
    }

    #[test]
    fn bandwidth_serialises_back_to_back_writes() {
        let mut nvm = small();
        let a = nvm.enqueue_write(0, 0).unwrap();
        let b = nvm.enqueue_write(64, 0).unwrap();
        assert_eq!(b - a, 32, "second line waits for the channel");
    }

    #[test]
    fn wpq_full_returns_retry_time() {
        let mut nvm = small();
        nvm.enqueue_write(0, 0).unwrap();
        nvm.enqueue_write(64, 0).unwrap();
        let err = nvm.enqueue_write(128, 0).unwrap_err();
        // First entry completes at 212; retry then.
        assert_eq!(err, 212);
        assert_eq!(nvm.stats().wpq_full_events, 1);
    }

    #[test]
    fn entries_drain_after_completion() {
        let mut nvm = small();
        nvm.enqueue_write(0, 0).unwrap();
        assert_eq!(nvm.wpq_free(0), 1);
        assert_eq!(nvm.wpq_free(10_000), 2);
    }

    #[test]
    fn enqueue_succeeds_after_drain() {
        let mut nvm = small();
        nvm.enqueue_write(0, 0).unwrap();
        nvm.enqueue_write(64, 0).unwrap();
        assert!(nvm.enqueue_write(128, 0).is_err());
        assert!(nvm.enqueue_write(128, 10_000).is_ok());
    }

    #[test]
    fn reads_have_fixed_latency_and_no_wpq_interaction() {
        let mut nvm = small();
        nvm.enqueue_write(0, 0).unwrap();
        assert_eq!(nvm.read(64, 100), 450);
        assert_eq!(nvm.stats().reads, 1);
        assert_eq!(nvm.wpq_occupancy(), 1);
    }

    #[test]
    fn wpq_lines_lists_pending_writes() {
        let mut nvm = small();
        nvm.enqueue_write(0, 0).unwrap();
        nvm.enqueue_write(64, 0).unwrap();
        let lines: Vec<u64> = nvm.wpq_lines().collect();
        assert_eq!(lines, vec![0, 64]);
    }

    #[test]
    fn paper_default_matches_table2() {
        let cfg = NvmConfig::paper_default();
        assert_eq!(cfg.read_latency, 350);
        assert_eq!(cfg.write_latency, 180);
        assert_eq!(cfg.wpq_entries, 16);
        assert!((cfg.write_bytes_per_cycle - 1.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_wpq_panics() {
        NvmConfig::paper_default().with_wpq_entries(0);
    }
}
