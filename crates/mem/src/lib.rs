//! Memory hierarchy for the PPA simulator.
//!
//! Models the machine of Table 2 in the paper: per-core L1D SRAM caches, a
//! shared (or private, for the Figure 14 configuration) L2, an optional
//! shared L3, a direct-mapped DRAM cache used as the last-level cache the
//! way Intel PMEM's *memory mode* does, and a PMEM (NVM) device with a
//! write-pending queue (WPQ) and bounded write bandwidth.
//!
//! On top of the plain hierarchy it implements the two data paths PPA's
//! evaluation depends on:
//!
//! * the **asynchronous store persistence** path of §4.3 — a per-core L1D
//!   write buffer that turns every committed store into a background
//!   write-back of the dirty line to NVM, with persist coalescing and a
//!   per-region outstanding-persist counter;
//! * the **Capri persist path** — a per-core battery-backed redo buffer
//!   drained to NVM over a dedicated channel of configurable bandwidth.
//!
//! The crate also maintains the *functional* state used by the
//! crash-consistency checker: the architectural memory (every committed
//! store value, word-granular) and the NVM image (what would actually
//! survive a power failure, given which lines have reached the device).
//!
//! # Timing model
//!
//! All times are core cycles at 2 GHz. Loads are charged the sum of hit
//! latencies down to the level that hits; there is no MSHR limit (the
//! out-of-order core overlaps misses naturally) and no cache-coherence
//! traffic (the workloads are data-race-free, §6). Write-backs and persists
//! move through the WPQ with `write_latency` plus bandwidth serialisation,
//! and full queues backpressure the requester — that backpressure is what
//! reproduces the WPQ- and bandwidth-sensitivity studies (Figures 15/18).
//!
//! # Examples
//!
//! ```
//! use ppa_mem::{MemConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
//! // First access misses all the way to NVM; the second hits in L1D.
//! let cold = mem.load(0, 0x4000, 0);
//! let warm = mem.load(0, 0x4000, cold);
//! assert!(cold > warm);
//! ```

mod cache;
mod config;
mod image;
mod multi_mc;
mod nvm;
mod system;
mod write_buffer;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheStats};
pub use config::{Backing, DramCacheConfig, MemConfig};
pub use image::{ArchMem, NvmImage};
pub use multi_mc::MultiChannelNvm;
pub use nvm::{Nvm, NvmConfig, NvmStats};
pub use system::{MemStats, MemorySystem};
pub use write_buffer::{WriteBuffer, WriteBufferStats};

/// Core clock frequency assumed by the latency constants (Table 2: 2 GHz).
pub const CORE_GHZ: f64 = 2.0;

/// Converts nanoseconds to core cycles at [`CORE_GHZ`].
///
/// # Examples
///
/// ```
/// // PMEM read latency: 175 ns -> 350 cycles at 2 GHz.
/// assert_eq!(ppa_mem::ns_to_cycles(175.0), 350);
/// ```
pub fn ns_to_cycles(ns: f64) -> u64 {
    (ns * CORE_GHZ).round() as u64
}

/// Converts GB/s to bytes per core cycle at [`CORE_GHZ`].
///
/// # Examples
///
/// ```
/// // 2.3 GB/s at 2 GHz is 1.15 B/cycle.
/// assert!((ppa_mem::gbps_to_bytes_per_cycle(2.3) - 1.15).abs() < 1e-12);
/// ```
pub fn gbps_to_bytes_per_cycle(gbps: f64) -> f64 {
    gbps / CORE_GHZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(ns_to_cycles(90.0), 180);
        assert_eq!(ns_to_cycles(0.0), 0);
        assert!((gbps_to_bytes_per_cycle(4.0) - 2.0).abs() < 1e-12);
    }
}
