use ppa_isa::{line_of, CACHE_LINE_BYTES};
use std::collections::HashMap;

/// Architectural memory: the value every committed store left behind, in
/// program (commit) order, at 8-byte-word granularity.
///
/// This is the *golden* memory the crash-consistency checker compares the
/// recovered NVM image against. Word granularity is enough because the
/// workload generators emit naturally aligned 8-byte stores; sub-word
/// stores are widened by the caller.
///
/// # Examples
///
/// ```
/// use ppa_mem::ArchMem;
///
/// let mut m = ArchMem::new();
/// m.write(0x1000, 42);
/// assert_eq!(m.read(0x1000), Some(42));
/// assert_eq!(m.read(0x2000), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArchMem {
    words: HashMap<u64, u64>,
}

impl ArchMem {
    /// Creates an empty memory.
    pub fn new() -> Self {
        ArchMem::default()
    }

    fn word_addr(addr: u64) -> u64 {
        addr & !7
    }

    /// Writes `value` to the 8-byte word containing `addr`.
    pub fn write(&mut self, addr: u64, value: u64) {
        self.words.insert(Self::word_addr(addr), value);
    }

    /// Reads the word containing `addr`; `None` if never written.
    pub fn read(&self, addr: u64) -> Option<u64> {
        self.words.get(&Self::word_addr(addr)).copied()
    }

    /// Number of distinct words written.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no word has ever been written.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterator over `(word_address, value)` pairs within the cache line
    /// starting at `line_addr`.
    pub fn words_in_line(&self, line_addr: u64) -> impl Iterator<Item = (u64, u64)> + '_ {
        let base = line_of(line_addr);
        (0..CACHE_LINE_BYTES / 8).filter_map(move |i| {
            let a = base + i * 8;
            self.words.get(&a).map(|&v| (a, v))
        })
    }

    /// Iterator over every written `(word_address, value)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }
}

/// The NVM image: what the persistent device actually holds, word-granular.
///
/// Lines reach the image through [`NvmImage::persist_line`], which
/// snapshots the architectural values of the line *at that moment* —
/// exactly what a write-back of the (up-to-date, single-writer) dirty line
/// carries. If a word is later overwritten architecturally but the line is
/// never written back again before a power failure, the image retains the
/// stale value; that staleness is the crash inconsistency PPA's store
/// replay repairs.
///
/// # Examples
///
/// ```
/// use ppa_mem::{ArchMem, NvmImage};
///
/// let mut arch = ArchMem::new();
/// let mut nvm = NvmImage::new();
/// arch.write(0x40, 1);
/// nvm.persist_line(0x40, &arch);
/// arch.write(0x40, 2); // newer value never persisted
/// assert_eq!(nvm.read(0x40), Some(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NvmImage {
    words: HashMap<u64, u64>,
}

impl NvmImage {
    /// Creates an empty image.
    pub fn new() -> Self {
        NvmImage::default()
    }

    /// Copies the architectural content of the line containing `addr` into
    /// the image (a line write-back reaching the persistence domain).
    pub fn persist_line(&mut self, addr: u64, arch: &ArchMem) {
        for (a, v) in arch.words_in_line(addr) {
            self.words.insert(a, v);
        }
    }

    /// Writes a single word directly (store replay during recovery, or the
    /// Capri redo-path which persists at store granularity).
    pub fn write_word(&mut self, addr: u64, value: u64) {
        self.words.insert(addr & !7, value);
    }

    /// Reads the word containing `addr`.
    pub fn read(&self, addr: u64) -> Option<u64> {
        self.words.get(&(addr & !7)).copied()
    }

    /// Number of distinct words present.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterator over `(word_address, value)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }

    /// Compares the image against architectural memory, returning the word
    /// addresses whose values differ or are missing — i.e. the crash
    /// inconsistencies a recovery must repair. An empty result means the
    /// image is crash-consistent.
    pub fn diff(&self, arch: &ArchMem) -> Vec<u64> {
        let mut bad: Vec<u64> = arch
            .iter()
            .filter(|&(a, v)| self.read(a) != Some(v))
            .map(|(a, _)| a)
            .collect();
        bad.sort_unstable();
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_mem_word_granularity() {
        let mut m = ArchMem::new();
        m.write(0x1003, 7); // unaligned address maps to word 0x1000
        assert_eq!(m.read(0x1000), Some(7));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn words_in_line_only_returns_written_words() {
        let mut m = ArchMem::new();
        m.write(0x40, 1);
        m.write(0x48, 2);
        m.write(0x80, 3); // different line
        let in_line: Vec<_> = m.words_in_line(0x40).collect();
        assert_eq!(in_line, vec![(0x40, 1), (0x48, 2)]);
    }

    #[test]
    fn persist_line_snapshots_current_values() {
        let mut arch = ArchMem::new();
        let mut nvm = NvmImage::new();
        arch.write(0x40, 1);
        arch.write(0x48, 2);
        nvm.persist_line(0x44, &arch); // any address within the line
        assert_eq!(nvm.read(0x40), Some(1));
        assert_eq!(nvm.read(0x48), Some(2));
    }

    #[test]
    fn diff_detects_stale_and_missing_words() {
        let mut arch = ArchMem::new();
        let mut nvm = NvmImage::new();
        arch.write(0x40, 1);
        nvm.persist_line(0x40, &arch);
        arch.write(0x40, 9); // stale in NVM now
        arch.write(0x80, 5); // missing from NVM
        assert_eq!(nvm.diff(&arch), vec![0x40, 0x80]);
    }

    #[test]
    fn diff_empty_when_consistent() {
        let mut arch = ArchMem::new();
        let mut nvm = NvmImage::new();
        for i in 0..32u64 {
            arch.write(i * 8, i);
        }
        for i in 0..32u64 {
            nvm.persist_line(i * 8, &arch);
        }
        assert!(nvm.diff(&arch).is_empty());
    }

    #[test]
    fn replay_repairs_inconsistency() {
        let mut arch = ArchMem::new();
        let mut nvm = NvmImage::new();
        arch.write(0x40, 1);
        nvm.persist_line(0x40, &arch);
        arch.write(0x40, 2);
        assert!(!nvm.diff(&arch).is_empty());
        // Recovery replays the committed store.
        nvm.write_word(0x40, 2);
        assert!(nvm.diff(&arch).is_empty());
    }

    #[test]
    fn persisting_unwritten_line_is_a_noop() {
        let arch = ArchMem::new();
        let mut nvm = NvmImage::new();
        nvm.persist_line(0x9999, &arch);
        assert!(nvm.is_empty());
    }
}
