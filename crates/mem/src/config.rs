use crate::cache::CacheConfig;
use crate::nvm::NvmConfig;

/// Direct-mapped DRAM cache configuration (PMEM memory mode's LLC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCacheConfig {
    /// Capacity in bytes (Table 2: 4 GB).
    pub size_bytes: u64,
    /// Hit latency in core cycles (DDR4-2400 round trip, ~30 ns → 60).
    pub hit_latency: u64,
}

impl DramCacheConfig {
    /// The paper's default 4 GB direct-mapped DDR4-2400 cache.
    pub fn paper_default() -> Self {
        DramCacheConfig {
            size_bytes: 4 << 30,
            hit_latency: crate::ns_to_cycles(30.0),
        }
    }
}

/// What sits at the bottom of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backing {
    /// Persistent memory with a WPQ (memory mode, app-direct, PPA).
    Nvm(NvmConfig),
    /// Volatile DRAM main memory (the Figure 9 DRAM-only system).
    Dram {
        /// Access latency in core cycles.
        latency: u64,
    },
}

/// Full memory-system configuration.
///
/// Use the preset constructors ([`MemConfig::memory_mode`] etc.) and adjust
/// fields for sweeps; every preset mirrors a configuration from the
/// paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Per-core L1 data cache (Table 2: 64 KB, 8-way, 4 cycles).
    pub l1d: CacheConfig,
    /// L2 cache (Table 2: shared 16 MB, 16-way, 44 cycles).
    pub l2: CacheConfig,
    /// Whether the L2 is shared among cores (`false` only in the Figure 14
    /// deeper-hierarchy configuration).
    pub l2_shared: bool,
    /// Optional shared L3 (Figure 14: 16 MB, 16-way, 44 cycles).
    pub l3: Option<CacheConfig>,
    /// Optional DRAM cache (present in memory mode, absent in app-direct
    /// and DRAM-only systems).
    pub dram_cache: Option<DramCacheConfig>,
    /// Bottom of the hierarchy.
    pub backing: Backing,
    /// Per-core L1D write-buffer entries for asynchronous persistence.
    pub write_buffer_entries: usize,
    /// Whether the write buffer performs persist coalescing (§4.3).
    pub persist_coalescing: bool,
    /// Cycles for an asynchronous write-back to travel from the L1D write
    /// buffer to the NVM controller (on-chip network + channel).
    pub persist_path_latency: u64,
    /// Capri's dedicated persist-path bandwidth in bytes per core cycle
    /// (the paper evaluates Capri at a practical 4 GB/s → 2 B/cycle).
    pub capri_path_bytes_per_cycle: f64,
    /// Capri's per-core battery-backed redo-buffer capacity (54 KB).
    pub capri_buffer_bytes: u64,
    /// Number of memory controllers the NVM sits behind (§6). Lines
    /// interleave across channels; aggregate bandwidth stays the same, but
    /// completion order across channels becomes arbitrary — the hazard
    /// PPA's region-level persistence tolerates.
    pub memory_controllers: usize,
}

impl MemConfig {
    /// PMEM **memory mode** (Table 2): L1D + shared L2 + 4 GB DRAM cache
    /// over NVM. This is the baseline system and the one PPA runs on.
    pub fn memory_mode() -> Self {
        MemConfig {
            l1d: CacheConfig::new(64 * 1024, 8, 4),
            l2: CacheConfig::new(16 << 20, 16, 44),
            l2_shared: true,
            l3: None,
            dram_cache: Some(DramCacheConfig::paper_default()),
            backing: Backing::Nvm(NvmConfig::paper_default()),
            write_buffer_entries: 16,
            persist_coalescing: true,
            persist_path_latency: 4,
            capri_path_bytes_per_cycle: crate::gbps_to_bytes_per_cycle(4.0),
            capri_buffer_bytes: 54 * 1024,
            memory_controllers: 1,
        }
    }

    /// Same system with the NVM behind `n` interleaved memory controllers
    /// (the §6 multi-MC configuration; Table 2's machine has two).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_memory_controllers(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one memory controller");
        self.memory_controllers = n;
        self
    }

    /// The Figure 14 deeper hierarchy: private 1 MB L2 (14 cycles) plus a
    /// shared 16 MB L3 (44 cycles) atop the DRAM cache.
    pub fn deep_hierarchy() -> Self {
        MemConfig {
            l2: CacheConfig::new(1 << 20, 16, 14),
            l2_shared: false,
            l3: Some(CacheConfig::new(16 << 20, 16, 44)),
            ..MemConfig::memory_mode()
        }
    }

    /// The Figure 9 comparison system: 32 GB of volatile DRAM as main
    /// memory, no NVM at all.
    pub fn dram_only() -> Self {
        MemConfig {
            dram_cache: None,
            backing: Backing::Dram {
                latency: crate::ns_to_cycles(30.0),
            },
            ..MemConfig::memory_mode()
        }
    }

    /// App-direct / ideal PSP (eADR / BBB, Figure 10): NVM is the main
    /// memory, with no DRAM cache to hide its latency. Batteries make the
    /// SRAM caches persistence-safe, so no persist operations are needed.
    pub fn app_direct() -> Self {
        MemConfig {
            dram_cache: None,
            ..MemConfig::memory_mode()
        }
    }

    /// Returns the NVM configuration if the backing is persistent.
    pub fn nvm(&self) -> Option<&NvmConfig> {
        match &self.backing {
            Backing::Nvm(n) => Some(n),
            Backing::Dram { .. } => None,
        }
    }

    /// Replaces the NVM configuration (sweep helper).
    ///
    /// # Panics
    ///
    /// Panics if the backing is not NVM.
    pub fn with_nvm(mut self, nvm: NvmConfig) -> Self {
        match &mut self.backing {
            Backing::Nvm(n) => *n = nvm,
            Backing::Dram { .. } => panic!("configuration has no NVM backing"),
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_mode_matches_table2() {
        let c = MemConfig::memory_mode();
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l1d.ways, 8);
        assert_eq!(c.l1d.hit_latency, 4);
        assert_eq!(c.l2.size_bytes, 16 << 20);
        assert_eq!(c.l2.hit_latency, 44);
        assert!(c.l2_shared);
        assert!(c.l3.is_none());
        assert_eq!(c.dram_cache.unwrap().size_bytes, 4 << 30);
        let nvm = c.nvm().unwrap();
        assert_eq!(nvm.wpq_entries, 16);
    }

    #[test]
    fn deep_hierarchy_has_private_l2_and_l3() {
        let c = MemConfig::deep_hierarchy();
        assert!(!c.l2_shared);
        assert_eq!(c.l2.size_bytes, 1 << 20);
        assert_eq!(c.l2.hit_latency, 14);
        assert_eq!(c.l3.unwrap().hit_latency, 44);
    }

    #[test]
    fn dram_only_has_no_nvm() {
        let c = MemConfig::dram_only();
        assert!(c.nvm().is_none());
        assert!(c.dram_cache.is_none());
    }

    #[test]
    fn app_direct_drops_the_dram_cache_but_keeps_nvm() {
        let c = MemConfig::app_direct();
        assert!(c.dram_cache.is_none());
        assert!(c.nvm().is_some());
    }

    #[test]
    fn with_nvm_swaps_device() {
        let c = MemConfig::memory_mode().with_nvm(NvmConfig::paper_default().with_wpq_entries(8));
        assert_eq!(c.nvm().unwrap().wpq_entries, 8);
    }

    #[test]
    #[should_panic(expected = "no NVM backing")]
    fn with_nvm_on_dram_only_panics() {
        MemConfig::dram_only().with_nvm(NvmConfig::paper_default());
    }
}
