use std::collections::VecDeque;

/// Statistics for one core's L1D write buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteBufferStats {
    /// Persist operations enqueued.
    pub enqueued: u64,
    /// Persist operations absorbed by coalescing with a pending entry to
    /// the same line (§4.3's persist coalescing).
    pub coalesced: u64,
    /// Persist operations accepted by the NVM WPQ.
    pub issued: u64,
    /// Enqueue attempts rejected because the buffer was full (the store
    /// stalls at commit until space frees up).
    pub full_rejections: u64,
}

/// The L1D write buffer that implements PPA's asynchronous store
/// persistence (§4.3).
///
/// When a committed store merges into the L1D, the cache controller drops a
/// persist operation for the dirty line into this buffer; the buffer pushes
/// it toward the NVM write-pending queue in the background while the
/// pipeline keeps executing. A persist operation is **acknowledged the
/// moment the WPQ accepts it** — the WPQ sits inside the ADR persistence
/// domain, exactly as on Intel platforms, so acceptance is durability. The
/// 90 ns media write happens behind the queue and only matters as
/// backpressure when traffic exceeds the device's write bandwidth
/// (Figures 15 and 18).
///
/// While a persist waits in the buffer, a younger store to the same line
/// coalesces into it (§4.3's persist coalescing) — correct within a region
/// because persist barriers guarantee all pending entries belong to the
/// same region.
///
/// The buffer also maintains the §4.3 **persistence counter**: the number
/// of persist operations accepted from the core but not yet acknowledged
/// by the WPQ. PPA's region boundary simply waits for this counter to
/// reach zero.
///
/// # Examples
///
/// ```
/// use ppa_mem::WriteBuffer;
///
/// let mut wb = WriteBuffer::new(16, true);
/// assert!(wb.enqueue(0x1000, 0));
/// assert!(wb.enqueue(0x1000, 1)); // coalesces
/// assert_eq!(wb.outstanding(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    lines: VecDeque<(u64, u64)>,
    capacity: usize,
    coalesce: bool,
    stats: WriteBufferStats,
}

impl WriteBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, coalesce: bool) -> Self {
        assert!(capacity > 0, "write buffer needs at least one entry");
        WriteBuffer {
            lines: VecDeque::with_capacity(capacity),
            capacity,
            coalesce,
            stats: WriteBufferStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &WriteBufferStats {
        &self.stats
    }

    /// Attempts to enqueue a persist operation for `line_addr`. Returns
    /// `false` (and counts a rejection) when the buffer is full and the
    /// operation cannot coalesce — the caller must stall and retry.
    pub fn enqueue(&mut self, line_addr: u64, now: u64) -> bool {
        self.enqueue_delayed(line_addr, now, 0)
    }

    /// Like [`WriteBuffer::enqueue`], but the entry only becomes eligible
    /// for WPQ issue after `delay` cycles — used for `clwb` operations,
    /// whose flush must traverse the cache hierarchy before it can reach
    /// the persistence domain (Table 1: unlike PPA's direct L1D write-back
    /// path, `clwb` rides the demand path).
    pub fn enqueue_delayed(&mut self, line_addr: u64, now: u64, delay: u64) -> bool {
        if self.coalesce && self.lines.iter().any(|&(l, _)| l == line_addr) {
            self.stats.enqueued += 1;
            self.stats.coalesced += 1;
            return true;
        }
        if self.lines.len() >= self.capacity {
            self.stats.full_rejections += 1;
            return false;
        }
        self.lines.push_back((line_addr, now + delay));
        self.stats.enqueued += 1;
        true
    }

    /// Advances the buffer one step at `now`: offers the oldest entry to
    /// the NVM via `issue` (which returns `Ok(media_completion_cycle)` on
    /// WPQ acceptance or `Err(retry_cycle)` when the WPQ is full). On
    /// acceptance the entry leaves the buffer — it is durable — and
    /// `retire` is called with the line address.
    ///
    /// At most one entry is issued per call (one L1D write-back port).
    pub fn tick<I, R>(&mut self, now: u64, mut issue: I, mut retire: R)
    where
        I: FnMut(u64, u64) -> Result<u64, u64>,
        R: FnMut(u64),
    {
        if let Some(&(line, ready_at)) = self.lines.front() {
            if ready_at <= now && issue(line, now).is_ok() {
                self.lines.pop_front();
                self.stats.issued += 1;
                retire(line);
            }
        }
    }

    /// The §4.3 persistence counter: persists accepted from the core but
    /// not yet acknowledged by the WPQ. A region boundary may only be
    /// crossed when this is 0.
    pub fn outstanding(&self) -> usize {
        self.lines.len()
    }

    /// Whether the buffer has room for a new non-coalescing entry.
    pub fn has_room(&self) -> bool {
        self.lines.len() < self.capacity
    }

    /// Whether a persist for `line_addr` would coalesce with a waiting
    /// entry.
    pub fn would_coalesce(&self, line_addr: u64) -> bool {
        self.coalesce && self.lines.iter().any(|&(l, _)| l == line_addr)
    }

    /// Drops all entries (used when modelling power failure: persists that
    /// have not reached the WPQ are lost — PPA replays them from the CSQ
    /// instead).
    pub fn clear(&mut self) {
        self.lines.clear();
    }

    /// Line addresses still waiting for WPQ acceptance.
    pub fn pending_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.lines.iter().map(|&(l, _)| l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_merges_same_line() {
        let mut wb = WriteBuffer::new(4, true);
        assert!(wb.enqueue(0, 0));
        assert!(wb.enqueue(0, 1));
        assert_eq!(wb.outstanding(), 1);
        assert_eq!(wb.stats().coalesced, 1);
    }

    #[test]
    fn no_coalescing_when_disabled() {
        let mut wb = WriteBuffer::new(4, false);
        wb.enqueue(0, 0);
        wb.enqueue(0, 1);
        assert_eq!(wb.outstanding(), 2);
        assert_eq!(wb.stats().coalesced, 0);
    }

    #[test]
    fn full_buffer_rejects() {
        let mut wb = WriteBuffer::new(1, true);
        assert!(wb.enqueue(0, 0));
        assert!(!wb.enqueue(64, 1));
        assert_eq!(wb.stats().full_rejections, 1);
    }

    #[test]
    fn acceptance_retires_the_entry_immediately() {
        let mut wb = WriteBuffer::new(4, true);
        wb.enqueue(0, 0);
        let mut retired = Vec::new();
        wb.tick(0, |_, now| Ok(now + 236), |l| retired.push(l));
        assert_eq!(wb.outstanding(), 0, "durable at WPQ acceptance");
        assert_eq!(retired, vec![0]);
    }

    #[test]
    fn one_issue_per_tick() {
        let mut wb = WriteBuffer::new(4, true);
        wb.enqueue(0, 0);
        wb.enqueue(64, 0);
        let mut issued = Vec::new();
        wb.tick(
            0,
            |l, now| {
                issued.push(l);
                Ok(now)
            },
            |_| {},
        );
        assert_eq!(issued, vec![0]);
        assert_eq!(wb.outstanding(), 1);
        wb.tick(
            1,
            |l, now| {
                issued.push(l);
                Ok(now)
            },
            |_| {},
        );
        assert_eq!(issued, vec![0, 64]);
        assert_eq!(wb.outstanding(), 0);
    }

    #[test]
    fn wpq_backpressure_keeps_entry_buffered() {
        let mut wb = WriteBuffer::new(4, true);
        wb.enqueue(0, 0);
        wb.tick(0, |_, _| Err(50), |_| {});
        assert_eq!(wb.stats().issued, 0);
        assert_eq!(wb.outstanding(), 1);
        // Coalescing still works while blocked.
        assert!(wb.enqueue(0, 1));
        assert_eq!(wb.outstanding(), 1);
    }

    #[test]
    fn clear_drops_everything() {
        let mut wb = WriteBuffer::new(4, true);
        wb.enqueue(0, 0);
        wb.enqueue(64, 0);
        wb.clear();
        assert_eq!(wb.outstanding(), 0);
        assert_eq!(wb.pending_lines().count(), 0);
    }

    #[test]
    fn delayed_entries_wait_for_readiness() {
        let mut wb = WriteBuffer::new(4, true);
        wb.enqueue_delayed(0, 0, 100);
        let mut issued = 0;
        wb.tick(
            50,
            |_, now| {
                issued += 1;
                Ok(now)
            },
            |_| {},
        );
        assert_eq!(issued, 0, "not ready yet");
        wb.tick(
            100,
            |_, now| {
                issued += 1;
                Ok(now)
            },
            |_| {},
        );
        assert_eq!(issued, 1);
        assert_eq!(wb.outstanding(), 0);
    }

    #[test]
    fn delayed_head_blocks_younger_entries() {
        // FIFO: a slow clwb at the head holds back later persists, like a
        // single write-back port would.
        let mut wb = WriteBuffer::new(4, true);
        wb.enqueue_delayed(0, 0, 100);
        wb.enqueue(64, 0);
        let mut issued = Vec::new();
        wb.tick(
            10,
            |l, now| {
                issued.push(l);
                Ok(now)
            },
            |_| {},
        );
        assert!(issued.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        WriteBuffer::new(0, true);
    }
}
