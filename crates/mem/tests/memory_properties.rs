//! Property-style tests over the memory system's invariants, driven by
//! seeded [`ppa_prng::Prng`] loops (offline, reproducible).

use ppa_mem::{MemConfig, MemorySystem};
use ppa_prng::Prng;

/// A random memory operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Load(u64),
    Store(u64, u64),
    Persist(u64),
    Tick,
}

fn random_op(rng: &mut Prng) -> Op {
    match rng.random_below(4) {
        0 => Op::Load(rng.random_below(64) * 64),
        1 => Op::Store(rng.random_below(64) * 64, rng.random_range(0u64..u64::MAX)),
        2 => Op::Persist(rng.random_below(64) * 64),
        _ => Op::Tick,
    }
}

/// Whatever the operation sequence, draining the write buffers always
/// terminates and brings the persistence counter to zero, and the NVM
/// image never contradicts architectural memory (it may lag, never
/// lead with a wrong value for a committed word... unless the word was
/// overwritten after persisting — in which case it is stale, which the
/// diff reports, never silently wrong).
#[test]
fn wb_drains_and_nvm_image_only_holds_committed_snapshots() {
    let mut rng = Prng::seed_from_u64(0x3e30_0001);
    for _case in 0..32 {
        let n_ops = 1 + rng.random_below(199) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
        let mut now = 0u64;
        for op in &ops {
            match *op {
                Op::Load(a) => {
                    mem.load(0, a, now);
                }
                Op::Store(a, v) => {
                    mem.store_merge(0, a, now);
                    mem.commit_store_value(a, v);
                }
                Op::Persist(a) => {
                    // Retry like the core does when the buffer is full.
                    while !mem.persist_enqueue(0, a, now) {
                        mem.tick(now);
                        now += 1;
                    }
                }
                Op::Tick => {
                    mem.tick(now);
                    now += 1;
                }
            }
        }
        // Drain completely.
        let mut guard = 0;
        while mem.persist_outstanding(0) > 0 {
            mem.tick(now);
            now += 1;
            guard += 1;
            assert!(guard < 1_000_000, "write buffer failed to drain");
        }
        // Every persisted word matches some committed value; in this
        // single-writer test the final arch value is the only commit per
        // address at drain time, so persisted-after-last-store words match
        // exactly. Words never persisted are simply absent.
        for (addr, v) in mem.arch_mem().iter() {
            if let Some(found) = mem.nvm_image().read(addr) {
                // Staleness is possible only if the word was stored again
                // after its last persist; the diff must flag exactly those.
                if found != v {
                    assert!(mem.nvm_image().diff(mem.arch_mem()).contains(&addr));
                }
            }
        }
    }
}

/// Cache walks never change functional state: loads are free of
/// side effects on architectural memory and the NVM image only grows
/// through write-backs.
#[test]
fn loads_have_no_functional_side_effects() {
    let mut rng = Prng::seed_from_u64(0x3e30_0002);
    for _case in 0..32 {
        let n = 1 + rng.random_below(99) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.random_below(1_000_000)).collect();
        let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
        mem.commit_store_value(0x40, 7);
        for (i, &a) in addrs.iter().enumerate() {
            mem.load(0, a * 8, i as u64);
        }
        assert_eq!(mem.arch_mem().len(), 1);
        assert_eq!(mem.functional_read(0x40), 7);
    }
}

/// Power failure wipes volatile state but never the NVM image.
#[test]
fn power_failure_preserves_the_persistence_domain() {
    let mut rng = Prng::seed_from_u64(0x3e30_0003);
    for _case in 0..32 {
        let n = 1 + rng.random_below(49) as usize;
        let stores: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.random_below(32), rng.random_range(0u64..u64::MAX)))
            .collect();
        let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
        let mut now = 0;
        for &(l, v) in &stores {
            let addr = l * 64;
            mem.store_merge(0, addr, now);
            mem.commit_store_value(addr, v);
            while !mem.persist_enqueue(0, addr, now) {
                mem.tick(now);
                now += 1;
            }
            mem.tick(now);
            now += 1;
        }
        while mem.persist_outstanding(0) > 0 {
            mem.tick(now);
            now += 1;
        }
        let image_before = mem.nvm_image().clone();
        mem.power_failure();
        assert_eq!(mem.nvm_image(), &image_before);
        assert_eq!(mem.persist_outstanding(0), 0);
    }
}
