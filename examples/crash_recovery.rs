//! Crash-recovery walkthrough: run a persistent-memory workload (WHISPER's
//! hash-table updater), cut power mid-execution, and follow PPA's §4.5–4.6
//! protocol step by step — JIT checkpoint, store replay, resume — with the
//! crash-consistency checker verifying each stage.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use ppa::core::{replay_stores, Core, CoreConfig, PersistenceMode};
use ppa::mem::{MemConfig, MemorySystem};
use ppa::workloads::registry;

fn main() {
    let app = registry::by_name("pc").expect("WHISPER pc exists");
    let trace = app.generate(20_000, 7);
    println!("workload: {} — {}", app.name, app.description);

    let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
    let mut core = Core::new(CoreConfig::paper_default(PersistenceMode::Ppa), 0);

    // Phase 1: normal execution, until the outage.
    let fail_cycle = 6_000;
    for now in 0..fail_cycle {
        core.step(&trace, &mut mem, now);
        mem.tick(now);
    }
    let committed = core.committed();
    let dirty = mem.nvm_image().diff(mem.arch_mem());
    println!("\n-- power failure at cycle {fail_cycle} --");
    println!(
        "committed so far: {committed} micro-ops (LCPC = {:#x})",
        core.lcpc()
    );
    println!(
        "NVM words inconsistent with committed state: {} {}",
        dirty.len(),
        if dirty.is_empty() {
            "(lucky instant: everything had just persisted)"
        } else {
            "<-- data a naive system would lose"
        }
    );

    // Phase 2: JIT checkpointing (§4.5) — MaskReg, CRT, CSQ, LCPC, and the
    // masked slice of the PRF go to NVM; everything else dies.
    let image = core.jit_checkpoint();
    let bytes = image.checkpoint_bytes(core.config().total_prf());
    println!("\n-- JIT checkpoint --");
    println!(
        "CSQ entries (committed stores of the region): {}",
        image.csq.len()
    );
    println!("masked physical registers: {}", image.masked.len());
    println!("checkpoint size: {bytes} bytes (paper worst case: 1838)");
    let e = ppa::energy::checkpoint_energy_uj(bytes);
    let t = ppa::energy::checkpoint_time_ns(bytes, 2.3);
    println!("energy: {e:.2} uJ   flush time: {:.2} us", t / 1000.0);
    mem.power_failure();

    // Phase 3: recovery (§4.6) — restore, replay, verify.
    println!("\n-- recovery --");
    let report = replay_stores(&image, mem.nvm_image_mut());
    println!(
        "replayed {} committed stores from the CSQ",
        report.replayed_stores
    );
    let diff = mem.nvm_image().diff(mem.arch_mem());
    println!(
        "NVM vs committed state after replay: {} mismatches",
        diff.len()
    );
    assert!(diff.is_empty(), "recovery must restore crash consistency");

    // Phase 4: resume after the LCPC and run to completion.
    let mut recovered = Core::recover(*core.config(), 0, &image);
    let mut now = fail_cycle;
    while !recovered.is_finished() {
        recovered.step(&trace, &mut mem, now);
        mem.tick(now);
        now += 1;
    }
    println!("\n-- resumed --");
    println!(
        "completed the remaining {} micro-ops; total committed: {}",
        trace.len() as u64 - committed,
        recovered.committed()
    );
    let final_diff = mem.nvm_image().diff(mem.arch_mem());
    assert!(final_diff.is_empty());
    println!("final NVM image is crash-consistent: true");
}
