//! Design-space exploration: how PPA's overhead responds to the three
//! hardware budgets an architect controls — physical-register-file size,
//! CSQ depth, and NVM write bandwidth — on one register-hungry and one
//! write-heavy application.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use ppa::mem::NvmConfig;
use ppa::sim::{Machine, SystemConfig};
use ppa::stats::TextTable;
use ppa::workloads::registry;

const LEN: usize = 25_000;

fn slowdown(base: SystemConfig, ppa: SystemConfig, app: &str) -> f64 {
    let app = registry::by_name(app).expect("known app");
    let b = Machine::new(base).run_app(&app, LEN, 1).cycles as f64;
    let p = Machine::new(ppa).run_app(&app, LEN, 1).cycles as f64;
    p / b
}

fn main() {
    println!("PPA design-space exploration ({LEN} uops per point)\n");

    let mut prf = TextTable::new(["int/fp PRF", "hmmer (register-hungry)", "gcc"]);
    for (i, f) in [(80, 80), (120, 120), (180, 168), (280, 224)] {
        let mut base = SystemConfig::baseline();
        base.core = base.core.with_prf(i, f);
        let mut cfg = SystemConfig::ppa();
        cfg.core = cfg.core.with_prf(i, f);
        prf.row([
            format!("{i}/{f}"),
            format!("{:.2}", slowdown(base, cfg, "hmmer")),
            format!("{:.2}", slowdown(base, cfg, "gcc")),
        ]);
    }
    println!("PRF size (Figure 16's axis):\n{prf}");

    let mut csq = TextTable::new(["CSQ entries", "rb (write-heavy)", "gcc"]);
    for n in [10, 20, 40, 80] {
        let mut cfg = SystemConfig::ppa();
        cfg.core = cfg.core.with_csq(n);
        csq.row([
            n.to_string(),
            format!("{:.2}", slowdown(SystemConfig::baseline(), cfg, "rb")),
            format!("{:.2}", slowdown(SystemConfig::baseline(), cfg, "gcc")),
        ]);
    }
    println!("CSQ depth (Figure 17's axis):\n{csq}");

    let mut bw = TextTable::new(["NVM write bw", "rb (write-heavy)", "gcc"]);
    for gbps in [1.0, 2.3, 4.0, 6.0] {
        let nvm = NvmConfig::paper_default().with_write_bandwidth_gbps(gbps);
        let mut base = SystemConfig::baseline();
        base.mem = base.mem.with_nvm(nvm);
        let mut cfg = SystemConfig::ppa();
        cfg.mem = cfg.mem.with_nvm(nvm);
        bw.row([
            format!("{gbps} GB/s"),
            format!("{:.2}", slowdown(base, cfg, "rb")),
            format!("{:.2}", slowdown(base, cfg, "gcc")),
        ]);
    }
    println!("NVM write bandwidth (Figure 18's axis):\n{bw}");

    println!("takeaway: PPA's cost concentrates where the paper said it would —");
    println!("tiny register files, and write traffic near the device's bandwidth.");
}
