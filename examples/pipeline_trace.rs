//! Pipeline walkthrough: replays the spirit of the paper's Figure 2 and
//! Figure 6 on a real simulated core, narrating renaming-driven region
//! formation event by event — store tracking in the CSQ, register
//! masking, barrier injection when the free list empties, and region
//! reclamation.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use ppa::core::{Core, CoreConfig, PersistenceMode, PipelineEvent};
use ppa::isa::{ArchReg, TraceBuilder};
use ppa::mem::{MemConfig, MemorySystem};

fn main() {
    // A small program in the style of Figure 6: definitions and stores
    // cycling a few architectural registers, on a core with a deliberately
    // tiny PRF (24 integer registers beyond nothing) so the free list
    // empties quickly and regions form before our eyes.
    let mut b = TraceBuilder::new("figure6");
    for i in 0..120u64 {
        let r = ArchReg::int((i % 4) as u8);
        b.alu(r, &[r]); // rN = f(rN): burns a physical register
        if i % 3 == 0 {
            b.store(r, 0x1000 + (i % 6) * 64, i + 1);
        }
    }
    let trace = b.build();

    let cfg = CoreConfig::paper_default(PersistenceMode::Ppa).with_prf(24, 33);
    let mut core = Core::new(cfg, 0);
    core.enable_event_log(4_096);
    let mut mem = MemorySystem::new(MemConfig::memory_mode(), 1);
    core.run(&trace, &mut mem);

    println!(
        "core: {}-entry int PRF, {}-entry CSQ, PPA mode\n",
        cfg.int_prf, cfg.csq_entries
    );
    let mut commits = 0u64;
    for ev in core.event_log().expect("log enabled").events() {
        match *ev {
            PipelineEvent::Commit { .. } => commits += 1,
            PipelineEvent::StoreTracked {
                cycle,
                addr,
                data_reg,
                csq_occupancy,
            } => println!(
                "cycle {cycle:>4}: store [{addr:#06x}] committed -> CSQ[{}] tracks {data_reg}, MaskReg[{data_reg}] set",
                csq_occupancy - 1
            ),
            PipelineEvent::BarrierInjected { cycle } => println!(
                "cycle {cycle:>4}: rename out of free registers -> persist barrier injected"
            ),
            PipelineEvent::RegionEnd {
                cycle,
                cause,
                insts,
                stores,
                reclaimed,
            } => println!(
                "cycle {cycle:>4}: region END ({cause:?}): {insts} insts / {stores} stores persisted, {reclaimed} masked registers reclaimed to the free list\n"
            ),
        }
    }
    println!("total commits: {commits}");
    println!(
        "regions: {} (avg {:.0} insts), consistent NVM: {}",
        core.stats().regions,
        core.stats().region_insts.mean(),
        mem.nvm_image().diff(mem.arch_mem()).is_empty()
    );
}
