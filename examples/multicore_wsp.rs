//! Whole-system persistence on a multi-core machine (§6): eight threads of
//! a SPLASH-3 kernel run under PPA, power fails mid-run, and every core
//! recovers independently — the CSQs replay in arbitrary order, which is
//! safe because the program is data-race-free.
//!
//! ```text
//! cargo run --release --example multicore_wsp
//! ```

use ppa::sim::{inject_failure_multicore, SystemConfig};
use ppa::workloads::registry;

fn main() {
    let app = registry::by_name("radix").expect("radix exists");
    println!(
        "workload: {} — {} ({} threads)",
        app.name, app.description, app.threads
    );

    let traces: Vec<_> = (0..app.threads)
        .map(|tid| app.generate_thread(8_000, 3, tid))
        .collect();
    let cfg = SystemConfig::ppa().with_threads(app.threads);

    for fail_cycle in [500u64, 3_000, 9_000] {
        let out = inject_failure_multicore(&cfg, &traces, fail_cycle);
        println!("\npower failure at cycle {fail_cycle}:");
        println!(
            "  committed before failure: {} micro-ops",
            out.committed_before
        );
        println!(
            "  raw NVM consistent at failure: {}{}",
            out.consistent_before_recovery,
            if out.consistent_before_recovery {
                ""
            } else {
                "   <-- the inconsistency"
            }
        );
        println!(
            "  checkpointed {} bytes across {} cores, replayed {} stores",
            out.checkpoint_bytes, app.threads, out.replayed_stores
        );
        println!(
            "  consistent after recovery: {}",
            out.consistent_after_recovery
        );
        println!(
            "  resumed and completed:     {}",
            out.completed_after_resume
        );
        assert!(out.consistent_after_recovery && out.completed_after_resume);
    }

    println!("\nevery failure point recovered correctly with per-core replay in");
    println!("arbitrary order — §6's data-race-freedom argument, demonstrated.");
}
