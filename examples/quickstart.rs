//! Quickstart: run one benchmark under the memory-mode baseline and under
//! PPA, and verify that PPA made the run crash-consistent for ~2% cost.
//!
//! ```text
//! cargo run --release --example quickstart [app] [uops]
//! ```

use ppa::sim::{Machine, SystemConfig};
use ppa::workloads::registry;

fn main() {
    let app_name = std::env::args().nth(1).unwrap_or_else(|| "mcf".into());
    let len: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);

    let Some(app) = registry::by_name(&app_name) else {
        eprintln!("unknown application '{app_name}'; known apps:");
        for a in registry::all() {
            eprintln!("  {} ({})", a.name, a.suite);
        }
        std::process::exit(2);
    };

    println!("{} ({}): {}", app.name, app.suite, app.description);
    println!(
        "simulating {len} micro-ops per thread, {} thread(s)\n",
        app.threads
    );

    let base = Machine::new(SystemConfig::baseline()).run_app_parallel(&app, len, 1);
    let ppa = Machine::new(SystemConfig::ppa()).run_app_parallel(&app, len, 1);

    println!("baseline (PMEM memory mode, no persistence):");
    println!("  cycles: {:>10}   IPC: {:.2}", base.cycles, base.ipc());
    println!(
        "  NVM image crash-consistent at end: {}   <-- the problem PPA solves",
        base.consistent
    );
    println!();
    println!("PPA (whole-system persistence):");
    println!("  cycles: {:>10}   IPC: {:.2}", ppa.cycles, ppa.ipc());
    println!("  NVM image crash-consistent at end: {}", ppa.consistent);
    println!(
        "  dynamic regions: {} (avg {:.0} instructions, {:.1} stores)",
        ppa.core_stats.iter().map(|c| c.regions).sum::<u64>(),
        ppa.region_insts().mean(),
        ppa.region_stores().mean()
    );
    println!(
        "  region-end stall: {:.2}% of cycles",
        ppa.region_end_stall_fraction() * 100.0
    );
    println!();
    println!(
        "slowdown: {:.3}x  (the paper reports 1.02x on average)",
        ppa.cycles as f64 / base.cycles as f64
    );

    assert!(ppa.consistent, "PPA must leave NVM crash-consistent");
}
