#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
# Everything runs offline against the vendored toolchain.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (verify feature)"
cargo clippy --workspace --all-targets --features ppa-core/verify -- -D warnings

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo test -p ppa-core --features verify -q"
cargo test -p ppa-core --features verify -q

# The pool on both feature graphs: standalone (default features) and
# alongside ppa-verify, whose dependency tree switches on ppa-core/verify.
echo "== cargo test -p ppa-pool -q"
cargo test -p ppa-pool -q

echo "== cargo test -p ppa-pool -p ppa-verify -q"
cargo test -p ppa-pool -p ppa-verify -q

# The multi-core machine on both feature graphs, same reasoning: the smp
# crate must behave identically with and without ppa-core's verify hooks.
echo "== cargo test -p ppa-smp -q"
cargo test -p ppa-smp -q

echo "== cargo test -p ppa-smp -p ppa-verify -q"
cargo test -p ppa-smp -p ppa-verify -q

# The grid on both feature graphs, same reasoning: the wire protocol,
# coordinator, and worker must behave identically with and without
# ppa-core's verify hooks in the dependency tree.
echo "== cargo test -p ppa-grid -q"
cargo test -p ppa-grid -q

echo "== cargo test -p ppa-grid -p ppa-verify -q"
cargo test -p ppa-grid -p ppa-verify -q

# The shared-workload generators feeding the race detector, on both
# feature graphs: the exported trace sets must be identical with and
# without ppa-core's verify hooks in the tree.
echo "== cargo test -p ppa-workloads -q"
cargo test -p ppa-workloads -q

echo "== cargo test -p ppa-workloads -p ppa-verify -q"
cargo test -p ppa-workloads -p ppa-verify -q

# Parallel smoke run: auto-sized pool, reduced trace length, a mix of
# simulation-heavy and static experiments. Timings land on stderr.
echo "== PPA_JOBS=0 repro smoke (fig11 table4 ckpt)"
time PPA_JOBS=0 PPA_REPRO_LEN=1200 \
    cargo run -q -p ppa-bench --release --bin repro -- fig11 table4 ckpt > /dev/null

# The shared-state thread sweep on the ppa-smp machine (8–64 cores).
echo "== PPA_JOBS=0 repro fig19 smoke (multi-core machine)"
time PPA_JOBS=0 PPA_REPRO_LEN=1200 \
    cargo run -q -p ppa-bench --release --bin repro -- fig19 > /dev/null

# Distributed smoke: the same experiments through a loopback grid must
# be byte-identical to the local run above.
echo "== repro loopback grid smoke (fig11 table4 ckpt, 2 workers)"
PPA_JOBS=0 PPA_REPRO_LEN=1200 \
    cargo run -q -p ppa-bench --release --bin repro -- fig11 table4 ckpt autopersist \
    > /tmp/ppa_ci_local.txt 2> /dev/null
time PPA_JOBS=0 PPA_REPRO_LEN=1200 \
    cargo run -q -p ppa-bench --release --bin repro -- --grid loopback:2 fig11 table4 ckpt autopersist \
    > /tmp/ppa_ci_grid.txt 2> /dev/null
diff /tmp/ppa_ci_local.txt /tmp/ppa_ci_grid.txt

# Same run with a worker killed mid-lease: the re-dispatch path must not
# perturb a single output byte.
echo "== repro loopback grid smoke with injected worker death"
PPA_JOBS=0 PPA_REPRO_LEN=1200 PPA_GRID_DIE_AFTER=3 \
    cargo run -q -p ppa-bench --release --bin repro -- --grid loopback:3 fig11 table4 ckpt autopersist \
    > /tmp/ppa_ci_grid_die.txt 2> /dev/null
diff /tmp/ppa_ci_local.txt /tmp/ppa_ci_grid_die.txt

# The static persist-ordering analysis engine, fixed seed: all 41
# workloads must lint clean under AutoPersist (exit code enforces it,
# including the fewer-barriers-than-capri bound), the race detector must
# pass all four shared generators and catch the injected defects, and the
# soundness cross-check must report zero static-clean-but-divergent
# mutants. The output must also be byte-identical at any job count.
echo "== ppa-verify lint + analyze (static persist-ordering engine)"
cargo run -q -p ppa-verify --release -- lint --len 1200 > /dev/null 2> /dev/null
cargo run -q -p ppa-verify --release -- analyze --len 1200 \
    > /tmp/ppa_ci_analyze.txt 2> /dev/null
grep -q "unsound=0" /tmp/ppa_ci_analyze.txt
grep -q "second writer caught" /tmp/ppa_ci_analyze.txt
grep -q "race judges: agree" /tmp/ppa_ci_analyze.txt
PPA_JOBS=0 cargo run -q -p ppa-verify --release -- analyze --len 1200 \
    > /tmp/ppa_ci_analyze_jobs.txt 2> /dev/null
diff /tmp/ppa_ci_analyze.txt /tmp/ppa_ci_analyze_jobs.txt

# lint --json: every emitted diagnostic must be one valid JSON object
# with the full field set, validated by an independent parser.
echo "== ppa-verify lint --json validation (python3)"
cargo run -q -p ppa-verify --release -- lint --len 1200 --json \
    > /tmp/ppa_ci_lint_json.txt 2> /dev/null
python3 - <<'EOF'
import json
lines = [l for l in open("/tmp/ppa_ci_lint_json.txt") if l.startswith("{")]
assert lines, "no JSON diagnostics emitted"
for line in lines:
    d = json.loads(line)
    for k in ("app", "profile", "rule", "severity", "pos", "pc", "message"):
        assert k in d, f"missing {k}: {d}"
    assert d["severity"] in ("error", "warning"), d
print(f"lint --json ok: {len(lines)} diagnostics")
EOF

# The crash oracle over the grid, same byte-identity bar.
echo "== ppa-verify oracle loopback grid smoke (2 workers)"
cargo run -q -p ppa-verify --release -- oracle --len 800 \
    > /tmp/ppa_ci_oracle_local.txt 2> /dev/null
time cargo run -q -p ppa-verify --release -- oracle --len 800 --grid loopback:2 \
    > /tmp/ppa_ci_oracle_grid.txt 2> /dev/null
diff /tmp/ppa_ci_oracle_local.txt /tmp/ppa_ci_oracle_grid.txt

# Full-stack self-test: benchmark + oracle units over loopback TCP with
# an injected mid-lease worker death.
echo "== ppa-grid selftest (3 workers, one dies mid-lease)"
time cargo run -q -p ppa-gridcli --release --bin ppa-grid -- selftest --workers 3 2> /dev/null

# Telemetry must never perturb stdout: the worker-death grid run again,
# now with every telemetry surface on, must match the local run byte
# for byte while also producing the metrics and trace files.
echo "== repro telemetry smoke (stdout identity under --metrics/--trace-out)"
PPA_JOBS=0 PPA_REPRO_LEN=1200 PPA_GRID_DIE_AFTER=3 \
    cargo run -q -p ppa-bench --release --bin repro -- --grid loopback:3 \
    --metrics --metrics-json /tmp/ppa_ci_metrics.json --trace-out /tmp/ppa_ci_trace.json \
    fig11 table4 ckpt autopersist > /tmp/ppa_ci_grid_telem.txt 2> /dev/null
diff /tmp/ppa_ci_local.txt /tmp/ppa_ci_grid_telem.txt

# The checker merges its verify.check.* metrics into the same snapshot
# (this is exactly how results/bench_baseline.json is regenerated).
echo "== ppa-verify check --metrics-json-merge"
cargo run -q -p ppa-verify --release -- check --len 600 \
    --metrics-json-merge /tmp/ppa_ci_metrics.json > /dev/null 2> /dev/null

# Smoke-validate the emitted JSON with an independent parser: it must
# parse, be non-empty, and contain the expected metric families; the
# trace must be sorted Chrome trace_event JSON of complete events.
echo "== telemetry JSON validation (python3)"
python3 - <<'EOF'
import json
m = json.load(open("/tmp/ppa_ci_metrics.json"))
assert m, "metrics JSON is empty"
for fam in ("grid.coord.", "verify.check.", "pool.", "sim.", "span.experiment.", "lint.autopersist."):
    assert any(k.startswith(fam) for k in m), f"no {fam}* metrics"
assert all(isinstance(v, (int, float)) for v in m.values()), "non-numeric metric value"
ev = json.load(open("/tmp/ppa_ci_trace.json"))["traceEvents"]
assert ev, "trace is empty"
assert all(e["ph"] == "X" for e in ev), "non-complete trace event"
assert all(a["ts"] <= b["ts"] for a, b in zip(ev, ev[1:])), "trace not ts-sorted"
print(f"telemetry ok: {len(m)} metrics, {len(ev)} trace events")
EOF

# Exhaustive failure-point mode of the smp crash oracle: every cycle of
# every shared workload is a failure point, with FSM-level mid-flush
# tearing probes, plus the arbiter mutation self-tests.
echo "== ppa-verify smp --fail-points all (exhaustive failure points)"
time cargo run -q -p ppa-verify --release -- smp --fail-points all > /dev/null 2> /dev/null

# The persistency-model conformance engine, pinned seed: a 256-test
# litmus batch against the axiomatic model across exhaustive failure
# points must report zero machine-unsound divergences, and every entry
# in the waiver table must actually be exercised (a waiver nothing hits
# is stale and fails the run). Output must be byte-identical at any job
# count, over a loopback grid, and with a worker killed mid-lease.
echo "== ppa-litmus conformance gate (256 tests, pinned seed)"
time PPA_JOBS=1 cargo run -q -p ppa-litmus --release -- run --tests 256 --seed 1 \
    --metrics-json /tmp/ppa_ci_litmus.json > /tmp/ppa_ci_litmus_local.txt 2> /dev/null
grep -q "machine-unsound=0" /tmp/ppa_ci_litmus_local.txt
grep -q "waivers: ppa-prefix-strength (model-incomplete): exercised by" /tmp/ppa_ci_litmus_local.txt
if grep -q "exercised by 0/" /tmp/ppa_ci_litmus_local.txt; then
    echo "ci: a waiver was never exercised"; exit 1
fi
if grep -q "stale waivers" /tmp/ppa_ci_litmus_local.txt; then
    echo "ci: stale waiver entries"; exit 1
fi
PPA_JOBS=8 cargo run -q -p ppa-litmus --release -- run --tests 256 --seed 1 \
    > /tmp/ppa_ci_litmus_jobs.txt 2> /dev/null
diff /tmp/ppa_ci_litmus_local.txt /tmp/ppa_ci_litmus_jobs.txt
PPA_JOBS=0 cargo run -q -p ppa-litmus --release -- run --tests 256 --seed 1 --grid loopback:3 \
    > /tmp/ppa_ci_litmus_grid.txt 2> /dev/null
diff /tmp/ppa_ci_litmus_local.txt /tmp/ppa_ci_litmus_grid.txt
PPA_JOBS=0 PPA_GRID_DIE_AFTER=2 cargo run -q -p ppa-litmus --release -- run \
    --tests 256 --seed 1 --grid loopback:3 > /tmp/ppa_ci_litmus_die.txt 2> /dev/null
diff /tmp/ppa_ci_litmus_local.txt /tmp/ppa_ci_litmus_die.txt

# Independent validation of the litmus metrics snapshot.
echo "== litmus metrics JSON validation (python3)"
python3 - <<'EOF'
import json
m = json.load(open("/tmp/ppa_ci_litmus.json"))
fams = [k for k in m if k.startswith("litmus.")]
assert fams, "no litmus.* metrics"
for k in ("litmus.tests", "litmus.cells", "litmus.cells.torn",
          "litmus.states.reached", "litmus.states.allowed",
          "litmus.unsound", "litmus.waived", "litmus.coverage"):
    assert k in m, f"missing {k}"
assert m["litmus.tests"] == 256, m["litmus.tests"]
assert m["litmus.unsound"] == 0, m["litmus.unsound"]
assert m["litmus.cells.torn"] > 0, "tearing probe never ran"
print(f"litmus metrics ok: {len(fams)} litmus.* metrics")
EOF

# The persistent service daemon: two concurrent clients submit the
# oracle fan-out while the daemon is SIGKILLed mid-queue and restarted
# from its checkpoint; both clients' stdout must be byte-identical to
# the local oracle run, and a third pass must be served entirely from
# the content-addressed cache (asserted via the daemon's metrics JSON).
echo "== ppa-serve gate (daemon, crash/restart, content-addressed cache)"
SERVE_CKPT=/tmp/ppa_ci_serve.ppsc
SERVE_PORT=/tmp/ppa_ci_serve.port
SERVE_METRICS=/tmp/ppa_ci_serve_metrics.json
rm -f "$SERVE_CKPT" "$SERVE_PORT" "$SERVE_METRICS"
./target/release/ppa-serve daemon --listen 127.0.0.1:0 \
    --checkpoint "$SERVE_CKPT" --checkpoint-interval 1 \
    --metrics-json "$SERVE_METRICS" --port-file "$SERVE_PORT" 2> /dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SERVE_PORT" ] && break; sleep 0.1; done
SERVE_ADDR=$(cat "$SERVE_PORT")
# A single-slot worker keeps the queue busy long enough for the kill
# below to land mid-queue.
./target/release/ppa-grid work --connect "$SERVE_ADDR" --jobs 1 2> /dev/null &
SERVE_WORK1=$!
./target/release/ppa-verify oracle --len 800 --grid "serve:$SERVE_ADDR" \
    > /tmp/ppa_ci_serve_a.txt 2> /dev/null &
SERVE_CLIENT_A=$!
./target/release/ppa-verify oracle --len 800 --grid "serve:$SERVE_ADDR" \
    > /tmp/ppa_ci_serve_b.txt 2> /dev/null &
SERVE_CLIENT_B=$!
# Let the fan-out get mid-queue (and a checkpoint tick land), then
# SIGKILL the daemon and restart it on the same port and checkpoint.
for _ in $(seq 1 200); do
    E=$(./target/release/ppa-serve stats --connect "$SERVE_ADDR" 2> /dev/null \
        | sed -n 's/.* entries=\([0-9]*\).*/\1/p')
    [ "${E:-0}" -ge 10 ] && break
    sleep 0.1
done
sleep 1.2
kill -9 "$SERVE_PID"
wait "$SERVE_WORK1" 2> /dev/null || true
./target/release/ppa-serve daemon --listen "$SERVE_ADDR" \
    --checkpoint "$SERVE_CKPT" --checkpoint-interval 1 \
    --metrics-json "$SERVE_METRICS" 2> /dev/null &
SERVE_PID=$!
PPA_JOBS=0 ./target/release/ppa-grid work --connect "$SERVE_ADDR" 2> /dev/null &
SERVE_WORK2=$!
wait "$SERVE_CLIENT_A" "$SERVE_CLIENT_B"
diff /tmp/ppa_ci_oracle_local.txt /tmp/ppa_ci_serve_a.txt
diff /tmp/ppa_ci_oracle_local.txt /tmp/ppa_ci_serve_b.txt
# Third pass: everything is now cached; stdout must not change a byte.
./target/release/ppa-verify oracle --len 800 --grid "serve:$SERVE_ADDR" \
    > /tmp/ppa_ci_serve_c.txt 2> /dev/null
diff /tmp/ppa_ci_oracle_local.txt /tmp/ppa_ci_serve_c.txt
sleep 1.5 # one cadence tick so the metrics snapshot includes the hits
python3 - <<'EOF'
import json
m = json.load(open("/tmp/ppa_ci_serve_metrics.json"))
# The snapshot comes from the *restarted* daemon: hits are guaranteed
# (the cached third pass), misses only occur if the kill landed before
# every unit was computed and checkpointed, so they are not required.
assert m.get("serve.cache.hits", 0) > 0, "no cache hits recorded"
assert m.get("serve.cache.entries", 0) > 0, "cache is empty"
for k in ("serve.queue.depth", "serve.clients.sessions"):
    assert k in m, f"missing {k}"
print(f"serve ok: hits={m['serve.cache.hits']} entries={m['serve.cache.entries']}")
EOF
./target/release/ppa-serve stop --connect "$SERVE_ADDR" > /dev/null 2> /dev/null
wait "$SERVE_PID" "$SERVE_WORK2" 2> /dev/null || true
rm -f "$SERVE_CKPT" "$SERVE_PORT"

echo "CI: all gates passed"
