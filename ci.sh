#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
# Everything runs offline against the vendored toolchain.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (verify feature)"
cargo clippy --workspace --all-targets --features ppa-core/verify -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo test -p ppa-core --features verify -q"
cargo test -p ppa-core --features verify -q

echo "CI: all gates passed"
